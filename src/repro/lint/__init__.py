"""``repro.lint`` — static I/O analysis for LDPLFS.

PR 1's :mod:`repro.insights` diagnoses I/O issues *after* a run; this
package is the ahead-of-run counterpart (IOPathTune-style): it inspects
code, not traces, and catches the two failure classes interposition-based
deployment is exposed to before a job is ever submitted:

1. **Bypass risk in our own core** — the interposition-coverage audit
   (:mod:`~repro.lint.coverage`) cross-checks every file-touching
   ``os``/``builtins``/``io`` symbol against ``_OS_PATCHES`` and the
   ``Shim`` method set; the whole-system concurrency analysis and
   ordering-contract checker from :mod:`repro.sanitize` prove the lock
   discipline and crash-ordering invariants across ``repro.core`` +
   ``repro.plfs`` + ``repro.plfsd`` (the lexical single-file checker in
   :mod:`~repro.lint.concurrency` remains as the reusable primitive).
   Together they are ``repro-lint --self-audit``, the CI gate that
   caught (and now pins) the vectored-I/O gap.
2. **Anti-patterns in application scripts** — the AST linter
   (:mod:`~repro.lint.rules` on the :mod:`~repro.lint.visitors`
   framework) flags code that would bypass PLFS (mmap, subprocess with
   mount paths, import-time bindings) or hit the regimes the paper
   grades (small-write loops → deploy LDPLFS; seek churn → positional
   I/O).

Findings are severity-graded on the same scale as ``repro.insights``,
render deterministically (text or canonical JSON), and merge into
insights reports / autotune explanations as ``static`` evidence.
"""

from .analyzer import SelfAudit, lint_path, lint_source, self_audit
from .concurrency import (
    DEFAULT_GUARDS,
    GuardSpec,
    check_source,
    self_audit_concurrency,
)
from .coverage import (
    ACKNOWLEDGED_PASSTHROUGH,
    FILE_TOUCHING_OS,
    AuditReport,
    audit_findings,
    audit_interposition,
    realos_gaps,
)
from .findings import RULES, LintFinding, RuleSpec, Severity, sort_findings
from .reporter import (
    as_static_evidence,
    findings_to_dict,
    findings_to_json,
    render_findings,
    render_self_audit,
    self_audit_to_json,
)
from .rules import ALL_RULE_VISITORS, rule_catalogue

__all__ = [
    "ACKNOWLEDGED_PASSTHROUGH",
    "ALL_RULE_VISITORS",
    "AuditReport",
    "DEFAULT_GUARDS",
    "FILE_TOUCHING_OS",
    "GuardSpec",
    "LintFinding",
    "RULES",
    "RuleSpec",
    "SelfAudit",
    "Severity",
    "as_static_evidence",
    "audit_findings",
    "audit_interposition",
    "check_source",
    "findings_to_dict",
    "findings_to_json",
    "lint_path",
    "lint_source",
    "realos_gaps",
    "render_findings",
    "render_self_audit",
    "rule_catalogue",
    "self_audit",
    "self_audit_concurrency",
    "self_audit_to_json",
    "sort_findings",
]
