"""Finding type and the severity-graded rule registry.

Mirrors :mod:`repro.insights.rules`: one shared :class:`Severity` scale,
one dataclass per detected issue carrying the evidence that triggered it,
and a registry keyed by stable rule IDs so reports (and the golden-file
tests) stay byte-identical across runs.

ID ranges: ``LDP0xx`` are self-audit rules (interposition coverage and
shim concurrency over our own core); ``LDP1xx`` are application-script
anti-patterns found by the AST linter; ``LDP2xx`` are whole-system
concurrency findings from :mod:`repro.sanitize` (interprocedural guard
analysis, lock-order cycles, the runtime lockset detector); ``LDP3xx``
are ordering-contract violations (crash-consistency invariants declared
in :mod:`repro.sanitize.contracts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.insights.rules import Severity

__all__ = ["Severity", "LintFinding", "RuleSpec", "RULES", "sort_findings"]


@dataclass
class LintFinding:
    """One statically detected issue, pinned to a source location."""

    rule: str
    name: str
    severity: Severity
    file: str
    line: int
    col: int
    detail: str
    recommendation: str
    evidence: dict = field(default_factory=dict)

    def location(self) -> str:
        if self.line:
            return f"{self.file}:{self.line}"
        return self.file

    def render(self) -> str:
        lines = [
            f"[{self.severity.name}] {self.rule} {self.name}  {self.location()}"
        ]
        lines.append(f"  {self.detail}")
        lines.append(f"  -> {self.recommendation}")
        if self.evidence:
            ev = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(self.evidence.items())
            )
            lines.append(f"  evidence: {ev}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.name,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "detail": self.detail,
            "recommendation": self.recommendation,
            "evidence": self.evidence,
        }


def _fmt(v) -> str:
    if isinstance(v, bool):
        return str(v).lower()
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def sort_findings(findings: list[LintFinding]) -> list[LintFinding]:
    """Deterministic report order: most severe first, then location."""
    return sorted(
        findings,
        key=lambda f: (-int(f.severity), f.file, f.line, f.col, f.rule),
    )


@dataclass(frozen=True)
class RuleSpec:
    """Registry entry: the per-rule constants every finding inherits."""

    rule_id: str
    name: str
    severity: Severity
    summary: str
    recommendation: str


def _spec(rule_id, name, severity, summary, recommendation) -> RuleSpec:
    return RuleSpec(rule_id, name, severity, summary, recommendation)


#: the rule registry (stable IDs; golden tests pin them)
RULES: dict[str, RuleSpec] = {
    spec.rule_id: spec
    for spec in [
        # -- self-audit rules (coverage + concurrency) -------------------- #
        _spec(
            "LDP001",
            "uninterposed-symbol",
            Severity.HIGH,
            "a file-touching os symbol is not interposed",
            "add the symbol to interpose._OS_PATCHES with a Shim method "
            "(or record a justified entry in coverage.ACKNOWLEDGED_PASSTHROUGH)",
        ),
        _spec(
            "LDP002",
            "patch-without-shim",
            Severity.HIGH,
            "a patched symbol has no Shim implementation",
            "implement the same-named Shim method (passthrough at minimum) "
            "or drop the _OS_PATCHES entry",
        ),
        _spec(
            "LDP003",
            "unguarded-mutation",
            Severity.HIGH,
            "shared interposition state mutated outside its lock",
            "wrap the mutation in the field's guarding lock "
            "(see concurrency.DEFAULT_GUARDS)",
        ),
        _spec(
            "LDP004",
            "lock-order-inversion",
            Severity.HIGH,
            "two guard locks are acquired in inconsistent orders",
            "pick one acquisition order for the lock pair and use it at "
            "every nesting site",
        ),
        _spec(
            "LDP005",
            "stale-patch",
            Severity.INFO,
            "an _OS_PATCHES entry does not exist in the os module",
            "remove the dead entry (or gate it per platform)",
        ),
        # -- application anti-patterns (AST linter) ----------------------- #
        _spec(
            "LDP101",
            "mmap-on-mount",
            Severity.HIGH,
            "mmap bypasses the interposed I/O path",
            "replace the mapping with read/write (or pread/pwrite) calls, "
            "which the shim retargets to PLFS",
        ),
        _spec(
            "LDP102",
            "zero-copy-bypass",
            Severity.WARN,
            "kernel zero-copy cannot see PLFS data",
            "copy with a read/write loop (shutil.copyfileobj) for files "
            "under a PLFS mount; the shim refuses zero-copy on PLFS fds",
        ),
        _spec(
            "LDP103",
            "subprocess-on-mount",
            Severity.HIGH,
            "a child process is handed a logical mount path",
            "do the I/O in-process, pass the backend path instead, or "
            "activate preload in the child (LDPLFS_PRELOAD=1 plus "
            "import repro.core.preload)",
        ),
        _spec(
            "LDP104",
            "fd-arithmetic",
            Severity.WARN,
            "arithmetic on a file-descriptor value",
            "treat descriptors as opaque handles; derive new ones only via "
            "dup/dup2 (both interposed)",
        ),
        _spec(
            "LDP105",
            "import-time-binding",
            Severity.HIGH,
            "a POSIX entry point was captured at import time",
            "call through the module (os.open) so install() can rebind it, "
            "or pass this module to Interposer.wrap_module() after install",
        ),
        _spec(
            "LDP106",
            "open-aliasing",
            Severity.WARN,
            "a file object is constructed outside builtins.open",
            "use builtins.open — it is rebound by install() and handles "
            "PLFS descriptors — instead of os.fdopen/io.FileIO",
        ),
        _spec(
            "LDP107",
            "small-write-loop",
            Severity.RECOMMEND,
            "a loop issues fixed small writes (the BT regime)",
            "deploy PLFS via LDPLFS (no code change needed): small strided "
            "writes become buffered per-process log appends — the paper "
            "measures up to ~20x in this regime",
        ),
        _spec(
            "LDP108",
            "seek-churn",
            Severity.WARN,
            "per-iteration seeks churn the emulated cursor",
            "use positional I/O (os.pread/os.pwrite/os.preadv/os.pwritev — "
            "all interposed) instead of seek+read/write pairs",
        ),
        _spec(
            "LDP109",
            "fd-leak",
            Severity.WARN,
            "a descriptor is opened but never closed",
            "use 'with open(...)' or close explicitly; a PLFS index "
            "dropping only reaches the backend at close/flush",
        ),
        _spec(
            "LDP110",
            "unbalanced-install",
            Severity.HIGH,
            "install() has no matching uninstall()",
            "use 'with interposed(...)' for scoped activation, or pair "
            "install() with uninstall() in a finally block",
        ),
        _spec(
            "LDP111",
            "syntax-error",
            Severity.HIGH,
            "the script cannot be parsed",
            "fix the syntax error; nothing was analysed beyond it",
        ),
        _spec(
            "LDP112",
            "blocking-call-in-async",
            Severity.HIGH,
            "blocking I/O or sleep inside an async function",
            "move the call into loop.run_in_executor (or use the asyncio "
            "equivalent, e.g. asyncio.sleep); a blocking call in a handler "
            "stalls every client the event loop serves",
        ),
        _spec(
            "LDP113",
            "await-under-lock",
            Severity.HIGH,
            "await inside a synchronous 'with <lock>:' block",
            "release the thread lock before awaiting, or replace it with "
            "an asyncio.Lock; suspending while holding a thread lock "
            "deadlocks any worker thread contending for it",
        ),
        # -- whole-system concurrency (repro.sanitize) -------------------- #
        _spec(
            "LDP201",
            "interprocedural-guard-bypass",
            Severity.HIGH,
            "registered shared state mutated with its guard provably unheld",
            "acquire the field's guarding lock on every call path to the "
            "mutation (see sanitize.registry.EXTENDED_GUARDS), or register "
            "the field's actual ownership discipline",
        ),
        _spec(
            "LDP202",
            "lock-order-cycle",
            Severity.HIGH,
            "the lock-order graph contains a cycle (deadlock candidate)",
            "break the cycle: pick one global acquisition order for the "
            "locks involved and restructure the nesting sites to follow it",
        ),
        _spec(
            "LDP203",
            "await-holding-threading-lock",
            Severity.HIGH,
            "an async function awaits while a threading lock is held",
            "release the thread lock before the await (the event loop "
            "parks holding it, deadlocking executor threads), or make the "
            "critical section synchronous",
        ),
        _spec(
            "LDP204",
            "lockset-violation",
            Severity.HIGH,
            "runtime accesses to shared state share no common lock",
            "serialize the accesses under one lock (or a documented "
            "single-owner discipline) and register it in _SANITIZE_SHARED",
        ),
        # -- ordering contracts (crash-consistency invariants) ------------ #
        _spec(
            "LDP301",
            "ordering-contract-violation",
            Severity.HIGH,
            "a declared crash-ordering invariant is violated by call order",
            "restore the contracted order (the 'first' operation must "
            "complete before the 'then' operation); these orders are what "
            "recovery correctness is proved against",
        ),
        _spec(
            "LDP302",
            "ordering-contract-missing-op",
            Severity.HIGH,
            "a contracted operation no longer appears in its function",
            "update sanitize.contracts.DEFAULT_CONTRACTS deliberately "
            "alongside the code change; a stale contract silently stops "
            "guarding the invariant it encodes",
        ),
    ]
}
