"""Orchestration: scripts in, sorted findings out.

Two front doors, matching the two halves of the subsystem:

- :func:`lint_source` / :func:`lint_path` — the application linter: parse
  a workload script, build its :class:`~repro.lint.visitors.ScriptContext`
  (including the mount prefixes the script declares), run every registered
  rule visitor.
- :func:`self_audit` — the repo's own static gate: the interposition
  coverage audit, the whole-system interprocedural lock analysis and the
  ordering-contract checker (both from :mod:`repro.sanitize`), combined
  into one finding list so CI has a single pass/fail.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

from .concurrency import GuardSpec
from .coverage import AuditReport, audit_findings, audit_interposition
from .findings import LintFinding, RULES, sort_findings
from .rules import run_rule_visitors
from .visitors import ScriptContext


def lint_source(
    source: str,
    filename: str = "<script>",
    mounts: tuple[str, ...] | None = None,
) -> list[LintFinding]:
    """Lint one script's source text; never executes it."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        spec = RULES["LDP111"]
        return [
            LintFinding(
                rule=spec.rule_id,
                name=spec.name,
                severity=spec.severity,
                file=filename,
                line=exc.lineno or 0,
                col=(exc.offset or 1) - 1,
                detail=f"syntax error: {exc.msg}",
                recommendation=spec.recommendation,
                evidence={},
            )
        ]
    ctx = ScriptContext.build(tree, filename, mounts)
    return sort_findings(run_rule_visitors(ctx))


def lint_path(
    path: str, mounts: tuple[str, ...] | None = None
) -> list[LintFinding]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, filename=path, mounts=mounts)


@dataclass
class SelfAudit:
    """Combined result of the repo's own static gate."""

    coverage: AuditReport
    findings: list[LintFinding] = field(default_factory=list)
    #: the interprocedural pass's StaticAnalysis (None for legacy callers)
    static: Any = None

    @property
    def passed(self) -> bool:
        return not self.findings


def self_audit(
    patches: list[str] | None = None,
    guards: list[GuardSpec] | None = None,
    *,
    targets: tuple[str, ...] | None = None,
    contracts: list | None = None,
) -> SelfAudit:
    """Coverage audit + whole-system concurrency and ordering contracts.

    The concurrency half is the interprocedural analysis from
    :mod:`repro.sanitize.static` — call-graph held-lock propagation,
    lock-order cycles, await-under-lock — over ``repro.core`` +
    ``repro.plfs`` + ``repro.plfsd`` (PR 2's lexical pass covered only
    the three ``repro.core`` guards), plus the crash-ordering contracts
    from :mod:`repro.sanitize.contracts`.

    *patches*, *guards*, *targets* and *contracts* default to the live
    tree; tests seed gaps through them to prove regressions are caught.
    """
    # imported lazily: repro.sanitize depends on repro.lint.findings
    from repro.sanitize.contracts import check_contracts
    from repro.sanitize.static import analyze

    coverage = audit_interposition(patches=patches)
    findings = audit_findings(coverage)
    static = analyze(targets, guards=guards)
    findings.extend(static.findings)
    findings.extend(check_contracts(contracts))
    return SelfAudit(
        coverage=coverage,
        findings=sort_findings(findings),
        static=static,
    )
