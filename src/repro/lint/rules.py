"""The AST anti-pattern rules (``LDP1xx``).

Each rule is a :class:`~repro.lint.visitors.LintVisitor` keyed to an
LDPLFS failure mode: either a call that escapes the interposition layer
(the static analogue of the runtime bypasses the coverage audit hunts in
our own core), or an access pattern the paper shows PLFS turns from a
pathology into a win (the BT small-write regime) or that costs extra under
the emulated cursor (seek churn).  Rules only *read* the script — they
never execute it — so ``repro-lint`` can advise before a job is submitted,
IOPathTune-style.
"""

from __future__ import annotations

import ast

from repro.core.interpose import _OS_PATCHES
from repro.insights.metrics import DEFAULT_SMALL_WRITE

from .findings import RULES, LintFinding, Severity
from .visitors import (
    LintVisitor,
    ScriptContext,
    call_name,
    dotted_name,
    estimate_size,
    string_constants,
)

#: writes at or below this are "small" (matches the insights profile)
SMALL_WRITE_THRESHOLD = DEFAULT_SMALL_WRITE

_SUBPROCESS_CALLS = {
    "subprocess.run",
    "subprocess.Popen",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.getoutput",
    "os.system",
    "os.popen",
    "os.posix_spawn",
    "os.execv",
    "os.execve",
    "os.spawnv",
}

_ZERO_COPY_CALLS = {"os.sendfile", "os.splice", "os.copy_file_range"}

_RAW_CONSTRUCTORS = {"io.FileIO", "io.open_code"}

_OPEN_CALLS = {"open", "os.open", "builtins.open", "io.open"}


class BypassCallsRule(LintVisitor):
    """LDP101/LDP102/LDP106: calls that escape the interposition layer."""

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        near_mount = bool(self.ctx.mount_literals)
        if name == "mmap.mmap":
            self.emit(
                "LDP101",
                node,
                "mmap maps kernel pages of the raw descriptor; a PLFS "
                "logical file has no single backing inode, so mapped "
                "reads and writes silently miss the container",
                severity=Severity.HIGH if near_mount else Severity.WARN,
                call=name,
                mount_paths_in_script=len(self.ctx.mount_literals),
            )
        elif name in _ZERO_COPY_CALLS:
            self.emit(
                "LDP102",
                node,
                f"{name} moves bytes in the kernel, below the shim: on a "
                "PLFS descriptor the interposed version refuses "
                "(EINVAL/EXDEV) and the call fails at runtime",
                call=name,
            )
        elif name == "os.fdopen":
            self.emit(
                "LDP106",
                node,
                "os.fdopen wraps an already-open descriptor in a second "
                "buffered owner; raw-fd writes and buffered writes then "
                "interleave unpredictably through the shared cursor",
                call=name,
            )
        elif name in _RAW_CONSTRUCTORS:
            self.emit(
                "LDP106",
                node,
                f"{name} constructs a file object through the C-level "
                "opener, which install() cannot rebind — a mount path "
                "here bypasses PLFS silently",
                severity=Severity.HIGH if near_mount else Severity.WARN,
                call=name,
            )
        self.generic_visit(node)


class SubprocessMountRule(LintVisitor):
    """LDP103: child processes handed logical mount paths."""

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name in _SUBPROCESS_CALLS:
            touched = sorted(
                {
                    s
                    for arg in list(node.args) + [kw.value for kw in node.keywords]
                    for s in string_constants(arg)
                    if self.ctx.is_mount_path(s)
                }
            )
            if touched:
                self.emit(
                    "LDP103",
                    node,
                    f"{name} passes the logical path {touched[0]!r} to a "
                    "child process; the child inherits no interposition, "
                    "so the path does not exist there",
                    call=name,
                    path=touched[0],
                )
        self.generic_visit(node)


class FdArithmeticRule(LintVisitor):
    """LDP104: arithmetic on values known to be file descriptors."""

    _ARITH = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)

    def run(self) -> list[LintFinding]:
        self._fd_names = set()
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if not isinstance(target, ast.Name) or not isinstance(
                    value, ast.Call
                ):
                    continue
                if call_name(value) == "os.open" or (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr == "fileno"
                ):
                    self._fd_names.add(target.id)
        return super().run()

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, self._ARITH):
            for side in (node.left, node.right):
                if isinstance(side, ast.Name) and side.id in self._fd_names:
                    self.emit(
                        "LDP104",
                        node,
                        f"{side.id!r} holds a file descriptor but is used "
                        "in arithmetic; LDPLFS shadow descriptors make "
                        "any adjacency or density assumption wrong",
                        fd_name=side.id,
                    )
                    break
        self.generic_visit(node)


class ImportBindingRule(LintVisitor):
    """LDP105: POSIX entry points captured at import time."""

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        captured: list[str] = []
        if node.module == "os":
            captured = sorted(
                {a.name for a in node.names} & set(_OS_PATCHES)
            )
        elif node.module in ("builtins", "io"):
            captured = sorted(
                {a.name for a in node.names} & {"open"}
            )
        if captured:
            names = ", ".join(captured)
            self.emit(
                "LDP105",
                node,
                f"'from {node.module} import {names}' copies the real "
                "function into this module before install() can rebind "
                "it — calls through the copy bypass PLFS, exactly like a "
                "statically linked binary bypasses LD_PRELOAD",
                module=node.module,
                symbols=names,
            )
        self.generic_visit(node)


class SmallWriteLoopRule(LintVisitor):
    """LDP107: fixed small writes inside a loop — the BT regime."""

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_loop():
            size = self._write_size(node)
            if size is not None and 0 < size <= SMALL_WRITE_THRESHOLD:
                self.emit(
                    "LDP107",
                    node,
                    f"this loop writes a fixed {size}-byte payload per "
                    "iteration; on a write-through shared file every such "
                    "write pays a synchronous backend round trip (the "
                    "paper's BT small-write regime, Fig. 4)",
                    write_size=size,
                    threshold=int(SMALL_WRITE_THRESHOLD),
                    loop_line=self.loop_line(),
                )
        self.generic_visit(node)

    def _write_size(self, node: ast.Call) -> int | None:
        name = call_name(node)
        data: ast.AST | None = None
        if name in ("os.write", "os.pwrite") and len(node.args) >= 2:
            data = node.args[1]
        elif name.endswith(".write") and name != "os.write" and node.args:
            data = node.args[0]
        elif name in ("os.writev", "os.pwritev") and len(node.args) >= 2:
            vec = node.args[1]
            if isinstance(vec, (ast.List, ast.Tuple)):
                sizes = [
                    estimate_size(e, self.ctx.size_bindings) for e in vec.elts
                ]
                if all(s is not None for s in sizes):
                    return sum(sizes)  # type: ignore[arg-type]
            return None
        if data is None:
            return None
        return estimate_size(data, self.ctx.size_bindings)


class SeekChurnRule(LintVisitor):
    """LDP108: seeking every iteration instead of positional I/O."""

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_loop():
            name = call_name(node)
            if name == "os.lseek" or name.endswith(".seek"):
                self.emit(
                    "LDP108",
                    node,
                    f"{name} runs once per iteration: on a PLFS fd every "
                    "seek is a real lseek on the shadow descriptor plus "
                    "cursor bookkeeping, paid before any data moves",
                    call=name,
                    loop_line=self.loop_line(),
                )
        self.generic_visit(node)


class FdLeakRule(LintVisitor):
    """LDP109: open without close/with — flushed only by the atexit drain."""

    def run(self) -> list[LintFinding]:
        self._seen: set[tuple] = set()
        self._check_scope(self.ctx.tree)
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(node)
        return self.findings

    def _scope_nodes(self, scope: ast.AST):
        """Walk *scope* without descending into nested function scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, scope: ast.AST) -> None:
        opened: dict[str, ast.AST] = {}
        closed: set[str] = set()
        escaped: set[str] = set()
        with_items: set[int] = set()
        for node in self._scope_nodes(scope):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        closed.add(item.context_expr.id)
        for node in self._scope_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and call_name(value) in _OPEN_CALLS
                ):
                    opened[target.id] = node
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name == "os.close" and node.args:
                    if isinstance(node.args[0], ast.Name):
                        closed.add(node.args[0].id)
                elif name.endswith(".close") and isinstance(
                    node.func, ast.Attribute
                ):
                    receiver = node.func.value
                    if isinstance(receiver, ast.Name):
                        closed.add(receiver.id)
                elif name == "os.fdopen" and node.args:
                    # fdopen takes ownership: the file object closes the fd
                    if isinstance(node.args[0], ast.Name):
                        escaped.add(node.args[0].id)
                elif (
                    name not in _OPEN_CALLS
                    and not name.startswith("os.")
                    and not name.endswith(".close")
                ):
                    # passing the handle to non-os code transfers ownership
                    # (os.* calls merely *use* the descriptor)
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            escaped.add(arg.id)
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                escaped.add(node.value.id)
        for name, node in sorted(opened.items()):
            if name not in closed and name not in escaped:
                self.emit(
                    "LDP109",
                    node,
                    f"{name!r} is opened here and never closed in this "
                    "scope; the PLFS index dropping stays in memory until "
                    "the atexit drain (and is lost on abnormal exit)",
                    fd_name=name,
                )
        # inline `open(...).read()`-style chains leak the handle instantly
        for node in self._scope_nodes(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Call)
                and call_name(node.func.value) in _OPEN_CALLS
                and id(node.func.value) not in with_items
            ):
                self.emit(
                    "LDP109",
                    node,
                    f"'open(...).{node.func.attr}()' drops the file object "
                    "without closing it; finalisation (and the PLFS index "
                    "flush) is left to the garbage collector",
                    call=f"open().{node.func.attr}",
                )

    def emit(self, rule_id, node, detail, **kw):
        # module scope re-walks function bodies: flag each site only once
        key = (rule_id, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key in self._seen:
            return None
        self._seen.add(key)
        return super().emit(rule_id, node, detail, **kw)


class InstallBalanceRule(LintVisitor):
    """LDP110: install() calls with no matching uninstall()."""

    def run(self) -> list[LintFinding]:
        self._installs: list[ast.Call] = []
        self._uninstalls = 0
        self.visit(self.ctx.tree)
        if len(self._installs) > self._uninstalls:
            node = self._installs[self._uninstalls]
            self.emit(
                "LDP110",
                node,
                "install() is called here but never uninstalled: the "
                "process stays patched and leaked PLFS descriptors are "
                "only flushed by the atexit drain",
                installs=len(self._installs),
                uninstalls=self._uninstalls,
            )
        return self.findings

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name.endswith("uninstall"):
            self._uninstalls += 1
        elif (name == "install" or name.endswith(".install")) and not self.in_with_item(node):
            self._installs.append(node)
        self.generic_visit(node)


#: synchronous calls that park the event loop when run in a coroutine
_BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "builtins.open",
    "io.open",
    "os.open",
    "os.read",
    "os.write",
    "os.pread",
    "os.pwrite",
    "os.preadv",
    "os.pwritev",
    "os.fsync",
    "os.fdatasync",
    "os.listdir",
    "os.scandir",
    "os.stat",
    "os.rename",
    "os.replace",
    "os.remove",
    "os.unlink",
    "os.truncate",
    "shutil.copy",
    "shutil.copyfile",
    "shutil.copytree",
    "shutil.rmtree",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
}


class AsyncBlockingRule(LintVisitor):
    """LDP112: blocking file I/O or sleep directly on the event loop."""

    def __init__(self, ctx: ScriptContext):
        super().__init__(ctx)
        self._async_depth = 0

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a sync def nested in a coroutine runs wherever it is called
        # (usually an executor) — its body is not loop-blocking here
        saved = self._async_depth
        self._async_depth = 0
        try:
            self.generic_visit(node)
        finally:
            self._async_depth = saved

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved = self._async_depth
        self._async_depth = 0
        try:
            self.generic_visit(node)
        finally:
            self._async_depth = saved

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth > 0:
            name = call_name(node)
            if name in _BLOCKING_CALLS:
                self.emit(
                    "LDP112",
                    node,
                    f"{name} blocks the event loop inside an async "
                    "function: every connected client stalls for the "
                    "duration (the daemon runs blocking PLFS calls in "
                    "run_in_executor for exactly this reason)",
                    call=name,
                )
        self.generic_visit(node)


class AwaitUnderLockRule(LintVisitor):
    """LDP113: ``await`` inside a synchronous ``with <lock>:`` block."""

    def __init__(self, ctx: ScriptContext):
        super().__init__(ctx)
        self._sync_locks: list[str] = []

    def _visit_def(self, node) -> None:
        # new function boundary: enclosing with-blocks are not held when
        # this body eventually runs
        saved = self._sync_locks
        self._sync_locks = []
        try:
            self.generic_visit(node)
        finally:
            self._sync_locks = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_With(self, node: ast.With) -> None:
        names: list[str] = []
        for item in node.items:
            expr = item.context_expr
            name = dotted_name(expr)
            if not name and isinstance(expr, ast.Call):
                name = call_name(expr)
            if "lock" in name.lower():
                names.append(name)
        self._sync_locks.extend(names)
        try:
            self._visit_with(node)
        finally:
            if names:
                del self._sync_locks[-len(names):]

    # async with (an asyncio lock) is fine to await under: base handling

    def visit_Await(self, node: ast.Await) -> None:
        if self._sync_locks:
            held = ", ".join(self._sync_locks)
            self.emit(
                "LDP113",
                node,
                f"awaiting while holding {held}: the coroutine suspends "
                "with the thread lock held, and any worker thread "
                "contending for it blocks the whole event loop",
                locks=held,
            )
        self.generic_visit(node)


#: registration order is the tiebreak inside one severity grade
ALL_RULE_VISITORS: list[type[LintVisitor]] = [
    BypassCallsRule,
    SubprocessMountRule,
    FdArithmeticRule,
    ImportBindingRule,
    SmallWriteLoopRule,
    SeekChurnRule,
    FdLeakRule,
    InstallBalanceRule,
    AsyncBlockingRule,
    AwaitUnderLockRule,
]


def run_rule_visitors(ctx) -> list[LintFinding]:
    """Run every registered rule over one script context."""
    findings: list[LintFinding] = []
    for visitor_cls in ALL_RULE_VISITORS:
        findings.extend(visitor_cls(ctx).run())
    return findings


def rule_catalogue() -> list[dict]:
    """Registry dump for ``repro-lint --list-rules`` (stable order)."""
    return [
        {
            "rule": spec.rule_id,
            "name": spec.name,
            "severity": spec.severity.name,
            "summary": spec.summary,
        }
        for _, spec in sorted(RULES.items())
    ]
