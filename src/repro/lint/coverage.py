"""The interposition-coverage audit.

The paper's premise is *no application modification*: whatever POSIX entry
point the application reaches for, the preloaded shim must catch it, or
the call silently operates on the real file system and the PLFS container
never sees it.  The C shim gets this wrong by omission (a libc symbol
nobody thought to wrap); the Python analogue is an ``os`` function missing
from :data:`repro.core.interpose._OS_PATCHES`.

This audit makes the omission class mechanical: a curated catalogue of
every file-touching symbol on the ``os``/``builtins``/``io`` surfaces is
cross-checked against the patch list and the :class:`~repro.core.shim.Shim`
method set.  Every catalogue symbol must be either *patched* (with a shim
implementation behind it) or *acknowledged* — an explicit entry with a
written justification for why passthrough is safe.  Anything else is a
bypass risk and fails the self-audit.  This is the check that caught the
vectored-I/O gap (``os.readv``/``os.writev``/``os.preadv``/``os.pwritev``)
closed in PR 2.
"""

from __future__ import annotations

import builtins
import inspect
import io
import os
from dataclasses import dataclass, field

from repro.core import interpose
from repro.core.shim import RealOS, Shim

from .findings import LintFinding, RuleSpec, RULES, Severity, sort_findings

#: every symbol on the ``os`` surface that takes a path or descriptor and
#: reads, writes, or mutates file data or metadata (Linux + common POSIX)
FILE_TOUCHING_OS: frozenset[str] = frozenset(
    {
        # descriptors and data
        "open", "close", "read", "write", "readv", "writev",
        "pread", "pwrite", "preadv", "pwritev", "lseek",
        "dup", "dup2", "sendfile", "copy_file_range", "splice",
        "fsync", "fdatasync", "ftruncate", "truncate", "isatty",
        "posix_fallocate", "posix_fadvise", "fdopen",
        # path metadata
        "stat", "lstat", "fstat", "access", "chmod", "lchmod", "utime",
        "statvfs", "fstatvfs", "pathconf", "fpathconf",
        "chown", "lchown", "fchown", "fchmod",
        "getxattr", "setxattr", "listxattr", "removexattr",
        # namespace
        "unlink", "remove", "rename", "replace", "link", "symlink",
        "readlink", "mkdir", "rmdir", "listdir", "scandir",
        "makedirs", "removedirs", "renames", "walk", "fwalk",
        "mknod", "mkfifo",
        # process-wide
        "chdir", "fchdir", "chroot", "getcwd", "getcwdb",
        "sync", "system", "popen",
    }
)

#: catalogue symbols deliberately left unpatched, each with the written
#: justification the audit report carries verbatim
ACKNOWLEDGED_PASSTHROUGH: dict[str, str] = {
    "chdir": (
        "working-directory navigation: logical mount paths have no kernel "
        "presence, so chdir onto one fails loudly (ENOENT) instead of "
        "silently bypassing; resolution of logical paths is absolute"
    ),
    "fchdir": (
        "directory fds handed out for logical directories are real backend "
        "fds (see Shim.open), so fchdir lands inside the backend tree"
    ),
    "getcwd": "reports the real working directory; never retargeted",
    "getcwdb": "bytes variant of getcwd; never retargeted",
    "chroot": "process-level namespace change, outside interposition scope",
    "chown": (
        "ownership is not modelled by the container format (the ACCESS "
        "dropping records mode only); passthrough fails loudly (ENOENT) on "
        "logical paths"
    ),
    "lchown": "see chown; symlinks do not exist inside logical trees",
    "fchown": "applies to the shadow descriptor only; see chown",
    "fchmod": (
        "fd-based chmod lands on the shadow descriptor; container modes "
        "are path-based through the interposed chmod"
    ),
    "lchmod": "see chmod; symlinks do not exist inside logical trees",
    "mknod": (
        "special files cannot live inside a logical PLFS tree; passthrough "
        "fails loudly (ENOENT) on logical paths"
    ),
    "mkfifo": "see mknod",
    "makedirs": "pure-Python composite over the interposed mkdir",
    "removedirs": "pure-Python composite over the interposed rmdir",
    "renames": "pure-Python composite over the interposed rename",
    "walk": "pure-Python composite over the interposed scandir",
    "fwalk": (
        "opens real directory fds; logical directories resolve to backend "
        "directories through the interposed open"
    ),
    "pathconf": "limits query answered by the backend file system",
    "fpathconf": "limits query answered on the shadow descriptor",
    "isatty": (
        "query on the shadow descriptor; the answer (False) is correct "
        "for every PLFS file"
    ),
    "posix_fallocate": (
        "preallocation on the shadow fd; droppings grow by append, so "
        "allocation hints are meaningless for them"
    ),
    "posix_fadvise": "advisory only; ignoring it cannot corrupt data",
    "fdopen": (
        "looks up io.open at call time, which install() rebinds; the "
        "aliasing hazard is flagged per-script by lint rule LDP106"
    ),
    "system": (
        "spawns a child process the interposer cannot reach; mount paths "
        "crossing the process boundary are flagged by lint rule LDP103"
    ),
    "popen": "see system",
    "sync": (
        "global kernel flush; PLFS data is flushed per-descriptor by the "
        "interposed fsync/fdatasync"
    ),
    "getxattr": (
        "extended attributes are not part of the container format; "
        "passthrough fails loudly (ENOENT) on logical paths"
    ),
    "setxattr": "see getxattr",
    "listxattr": "see getxattr",
    "removexattr": "see getxattr",
}

#: file-opening callables on the ``io`` surface and their standing
IO_SURFACE: dict[str, str] = {
    "open": "patched",  # rebound alongside builtins.open by _patch()
    "open_code": (
        "interpreter-internal loader hook; reads real source files only"
    ),
    "FileIO": (
        "C-level constructor that install() cannot rebind; direct use is "
        "flagged per-script by lint rule LDP106"
    ),
}

#: patch names whose Shim method carries a different name
SHIM_ALIASES = {"remove": "unlink"}


@dataclass
class AuditReport:
    """Outcome of one coverage audit (all lists sorted, JSON-ready)."""

    patched: list[str] = field(default_factory=list)
    uncovered: list[str] = field(default_factory=list)
    acknowledged: dict[str, str] = field(default_factory=dict)
    missing_shim: list[str] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)
    builtin_covered: list[str] = field(default_factory=list)
    builtin_uncovered: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.uncovered or self.missing_shim or self.builtin_uncovered)

    def as_dict(self) -> dict:
        return {
            "patched": self.patched,
            "uncovered": self.uncovered,
            "acknowledged": self.acknowledged,
            "missing_shim": self.missing_shim,
            "stale": self.stale,
            "builtin_covered": self.builtin_covered,
            "builtin_uncovered": self.builtin_uncovered,
            "clean": self.clean,
        }


def _patched_builtin_surfaces(interposer_cls=None) -> set[str]:
    """The builtin/io names ``Interposer._patch`` rebinds, read statically
    from its source (the audit must not install anything to find out)."""
    cls = interposer_cls or interpose.Interposer
    try:
        source = inspect.getsource(cls._patch)
    except (OSError, TypeError):  # pragma: no cover - frozen builds
        return set()
    return {
        name
        for name in ("builtins.open", "io.open")
        if f'"{name}"' in source or f"'{name}'" in source
    }


def audit_interposition(
    patches: list[str] | None = None,
    shim_cls: type = Shim,
    os_module=os,
    catalogue: frozenset[str] = FILE_TOUCHING_OS,
    acknowledged: dict[str, str] | None = None,
    interposer_cls=None,
) -> AuditReport:
    """Cross-check the file-touching catalogue against the patch list.

    Every parameter defaults to the live tree; tests inject a seeded-gap
    patch list to prove a regression would be caught.
    """
    patches = list(interpose._OS_PATCHES if patches is None else patches)
    acknowledged = (
        ACKNOWLEDGED_PASSTHROUGH if acknowledged is None else acknowledged
    )
    patched_set = set(patches)
    present = {name for name in catalogue if hasattr(os_module, name)}

    report = AuditReport()
    report.patched = sorted(patched_set & present)
    report.stale = sorted(p for p in patches if not hasattr(os_module, p))
    report.uncovered = sorted(
        name
        for name in present
        if name not in patched_set and name not in acknowledged
    )
    report.acknowledged = {
        name: reason
        for name, reason in sorted(acknowledged.items())
        if name in present
    }
    report.missing_shim = sorted(
        name
        for name in patched_set
        if not callable(getattr(shim_cls, SHIM_ALIASES.get(name, name), None))
    )

    covered_builtins = _patched_builtin_surfaces(interposer_cls)
    surfaces: dict[str, str] = {"builtins.open": "patched"}
    surfaces.update({f"io.{k}": v for k, v in IO_SURFACE.items()})
    for surface, standing in sorted(surfaces.items()):
        module, attr = surface.split(".", 1)
        if not hasattr(io if module == "io" else builtins, attr):
            continue  # pragma: no cover - platform dependent
        if standing == "patched":
            if surface in covered_builtins:
                report.builtin_covered.append(surface)
            else:
                report.builtin_uncovered.append(surface)
        else:
            report.acknowledged[surface] = standing
    return report


def audit_findings(report: AuditReport) -> list[LintFinding]:
    """Render an audit's failures as lint findings (empty when clean)."""

    def finding(spec: RuleSpec, detail: str, **evidence) -> LintFinding:
        return LintFinding(
            rule=spec.rule_id,
            name=spec.name,
            severity=spec.severity,
            file="repro.core.interpose",
            line=0,
            col=0,
            detail=detail,
            recommendation=spec.recommendation,
            evidence=dict(sorted(evidence.items())),
        )

    findings: list[LintFinding] = []
    for name in report.uncovered:
        findings.append(
            finding(
                RULES["LDP001"],
                f"os.{name} touches files but is neither patched nor "
                "acknowledged: while interposition is installed it runs "
                "against the real OS, so a PLFS-backed path or fd "
                "silently bypasses the container",
                symbol=f"os.{name}",
            )
        )
    for surface in report.builtin_uncovered:
        findings.append(
            finding(
                RULES["LDP001"],
                f"{surface} is not rebound by Interposer._patch; "
                "applications opening through it bypass PLFS",
                symbol=surface,
            )
        )
    for name in report.missing_shim:
        findings.append(
            finding(
                RULES["LDP002"],
                f"os.{name} is listed in _OS_PATCHES but the Shim class "
                "has no matching method; install() would bind None",
                symbol=f"os.{name}",
            )
        )
    for name in report.stale:
        findings.append(
            finding(
                RULES["LDP005"],
                f"_OS_PATCHES lists os.{name}, which does not exist on "
                "this platform's os module; the entry is dead weight",
                symbol=f"os.{name}",
            )
        )
    return sort_findings(findings)


def realos_gaps(patches: list[str] | None = None) -> list[str]:
    """Patched symbols with no RealOS snapshot field to pass through to.

    A patch without a saved original cannot fall through for non-PLFS
    paths — a softer failure than a missing shim, but still a config bug.
    """
    patches = list(interpose._OS_PATCHES if patches is None else patches)
    fields = set(RealOS.__dataclass_fields__)
    gaps = []
    for name in patches:
        target = SHIM_ALIASES.get(name, name)
        if target not in fields and name not in ("remove",):
            gaps.append(name)
    return sorted(gaps)
