"""``repro-lint`` — static I/O analysis before a run ever happens.

Two modes::

    # lint application workload scripts for LDPLFS anti-patterns
    repro-lint app.py [more.py ...] [--mount /mnt/plfs] [--json]

    # audit our own interposition coverage + shim locking (the CI gate)
    repro-lint --self-audit [--json]

Exit status: 0 when no finding reaches ``--fail-on`` (default: warn),
1 when one does, 2 on usage errors.  Output is deterministic — identical
inputs produce byte-identical reports, JSON included.
"""

from __future__ import annotations

import argparse
import sys

from repro.insights.rules import Severity

from .analyzer import lint_path, self_audit
from .findings import LintFinding, sort_findings
from .reporter import (
    findings_to_json,
    render_findings,
    render_self_audit,
    self_audit_to_json,
)
from .rules import rule_catalogue

_SEVERITY_CHOICES = {
    "info": Severity.INFO,
    "recommend": Severity.RECOMMEND,
    "warn": Severity.WARN,
    "high": Severity.HIGH,
    # "error" is the CI-facing alias: HIGH is the top of the scale, and
    # every LDP2xx/LDP3xx concurrency or ordering finding lands there
    "error": Severity.HIGH,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static I/O analysis for LDPLFS: application anti-pattern "
            "linting, interposition-coverage audit, and shim concurrency "
            "checking"
        ),
    )
    parser.add_argument(
        "scripts", nargs="*", help="workload scripts to lint"
    )
    parser.add_argument(
        "--self-audit",
        action="store_true",
        help=(
            "audit interposition coverage, whole-system lock discipline "
            "(repro.core + repro.plfs + repro.plfsd) and ordering contracts"
        ),
    )
    parser.add_argument(
        "--mount",
        action="append",
        default=[],
        metavar="PREFIX",
        help="treat paths under PREFIX as PLFS mount paths (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )
    parser.add_argument(
        "--fail-on",
        choices=sorted(_SEVERITY_CHOICES) + ["never"],
        default="warn",
        help="lowest severity that fails the run (default: warn)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry"
    )
    return parser


def _exit_code(findings: list[LintFinding], fail_on: str) -> int:
    if fail_on == "never":
        return 0
    threshold = _SEVERITY_CHOICES[fail_on]
    return 1 if any(f.severity >= threshold for f in findings) else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for row in rule_catalogue():
            print(
                f"{row['rule']}  {row['name']:<22} "
                f"[{row['severity']}] {row['summary']}"
            )
        return 0

    if args.self_audit:
        audit = self_audit()
        print(
            self_audit_to_json(audit)
            if args.json
            else render_self_audit(audit)
        )
        return _exit_code(audit.findings, args.fail_on)

    if not args.scripts:
        parser.print_usage(sys.stderr)
        print(
            "repro-lint: error: provide scripts to lint or --self-audit",
            file=sys.stderr,
        )
        return 2

    mounts = tuple(args.mount) or None
    findings: list[LintFinding] = []
    for path in args.scripts:
        try:
            findings.extend(lint_path(path, mounts=mounts))
        except OSError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
    findings = sort_findings(findings)
    target = ", ".join(args.scripts)
    print(
        findings_to_json(findings, target)
        if args.json
        else render_findings(findings, target)
    )
    return _exit_code(findings, args.fail_on)


if __name__ == "__main__":
    sys.exit(main())
