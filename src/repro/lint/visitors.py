"""The AST visitor framework the lint rules are built on.

A :class:`ScriptContext` carries everything a rule may need to know about
the script under analysis — source, filename, the PLFS mount prefixes the
script appears to target — and collects the emitted findings.  Rules are
:class:`LintVisitor` subclasses; the base class adds what ``ast.NodeVisitor``
lacks for I/O linting: dotted call-name resolution, loop/with depth
tracking, static size estimation for write payloads, and a uniform
``emit()`` that stamps findings with their registry entry (severity, title,
recommendation) so reports stay consistent across rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .findings import RULES, LintFinding

#: mount prefixes assumed when the script does not declare its own
DEFAULT_MOUNT_HINTS = ("/mnt/plfs",)

#: call names whose string arguments declare mount points
_MOUNT_DECLARING_CALLS = {
    "interposed",
    "interpose.interposed",
    "install",
    "interpose.install",
    "add_mount",
}


def dotted_name(node: ast.AST) -> str:
    """``os.path.join`` for an ``ast.Attribute``/``ast.Name`` chain, or ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    return dotted_name(node.func)


def string_constants(node: ast.AST):
    """Every ``str`` constant reachable under *node* (f-string parts too)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def estimate_size(node: ast.AST, bindings: dict[str, int]) -> int | None:
    """Static byte-size of a write payload expression, or None.

    Handles ``b"..."``/``"..."`` literals, ``literal * N`` repetition, and
    names whose single assignment had an estimable size (*bindings*).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, (bytes, str)):
        return len(node.value)
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left = estimate_size(node.left, bindings)
        right = estimate_size(node.right, bindings)
        lint = _const_int(node.left)
        rint = _const_int(node.right)
        if left is not None and rint is not None:
            return left * rint
        if right is not None and lint is not None:
            return lint * right
    return None


def _const_int(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


@dataclass
class ScriptContext:
    """One script under analysis plus the findings gathered so far."""

    filename: str
    tree: ast.AST
    mount_prefixes: tuple[str, ...] = DEFAULT_MOUNT_HINTS
    #: string constants in the script that resolve under a mount prefix
    mount_literals: list[str] = field(default_factory=list)
    #: name -> statically estimated size, from single constant assignments
    size_bindings: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        tree: ast.AST,
        filename: str,
        mounts: tuple[str, ...] | None = None,
    ) -> "ScriptContext":
        prefixes = tuple(mounts or ()) + cls._declared_mounts(tree)
        if not prefixes:
            prefixes = DEFAULT_MOUNT_HINTS
        ctx = cls(filename=filename, tree=tree, mount_prefixes=prefixes)
        ctx.mount_literals = sorted(
            {s for s in string_constants(tree) if ctx.is_mount_path(s)}
        )
        ctx.size_bindings = cls._collect_size_bindings(tree)
        return ctx

    @staticmethod
    def _declared_mounts(tree: ast.AST) -> tuple[str, ...]:
        """Mount points the script itself declares (interposed/install/add_mount)."""
        found: list[str] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _MOUNT_DECLARING_CALLS:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    found.append(arg.value)
                    break  # only the mount point, never the backend
                if isinstance(arg, (ast.List, ast.Tuple)):
                    for elt in arg.elts:
                        if isinstance(elt, (ast.Tuple, ast.List)) and elt.elts:
                            first = elt.elts[0]
                            if isinstance(first, ast.Constant) and isinstance(
                                first.value, str
                            ):
                                found.append(first.value)
        return tuple(dict.fromkeys(found))

    @staticmethod
    def _collect_size_bindings(tree: ast.AST) -> dict[str, int]:
        assigned: dict[str, int | None] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    size = estimate_size(node.value, {})
                    if target.id in assigned:
                        assigned[target.id] = None  # reassigned: unknown
                    else:
                        assigned[target.id] = size
        return {k: v for k, v in assigned.items() if v is not None}

    def is_mount_path(self, s: str) -> bool:
        return any(
            s == p or s.startswith(p.rstrip("/") + "/")
            for p in self.mount_prefixes
        )


class LintVisitor(ast.NodeVisitor):
    """Base class for lint rules: context, depth tracking, emit()."""

    def __init__(self, ctx: ScriptContext):
        self.ctx = ctx
        self.findings: list[LintFinding] = []
        self.loop_depth = 0
        self._loop_stack: list[ast.AST] = []
        self._with_items: list[ast.expr] = []

    # -- traversal hooks ------------------------------------------------ #

    def run(self) -> list[LintFinding]:
        self.visit(self.ctx.tree)
        return self.findings

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node) -> None:
        self.loop_depth += 1
        self._loop_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self._loop_stack.pop()
            self.loop_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        exprs = [item.context_expr for item in node.items]
        self._with_items.extend(exprs)
        try:
            self.generic_visit(node)
        finally:
            del self._with_items[-len(exprs):]

    # -- helpers --------------------------------------------------------- #

    def in_loop(self) -> bool:
        return self.loop_depth > 0

    def loop_line(self) -> int:
        """Line of the innermost enclosing loop (0 when not in one)."""
        if not self._loop_stack:
            return 0
        return getattr(self._loop_stack[-1], "lineno", 0)

    def in_with_item(self, node: ast.AST) -> bool:
        """True when *node* is itself a ``with`` context expression."""
        return any(item is node for item in self._with_items)

    def emit(
        self,
        rule_id: str,
        node: ast.AST,
        detail: str,
        *,
        severity=None,
        recommendation: str | None = None,
        **evidence,
    ) -> LintFinding:
        spec = RULES[rule_id]
        finding = LintFinding(
            rule=rule_id,
            name=spec.name,
            severity=severity or spec.severity,
            file=self.ctx.filename,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            detail=detail,
            recommendation=recommendation or spec.recommendation,
            evidence=dict(sorted(evidence.items())),
        )
        self.findings.append(finding)
        return finding
