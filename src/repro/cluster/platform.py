"""Runtime hardware model: one :class:`Platform` per simulation run.

Instantiates the queueing network a :class:`~repro.cluster.machine.MachineSpec`
describes: per-node NICs and client file-system daemons, I/O servers with
seek-aware disk arrays, a metadata service (dedicated or distributed) whose
service time degrades under queueing, and per-process write-back caches.

All times are seconds, all sizes bytes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator

from repro.sim.engine import Environment
from repro.sim.resources import BandwidthPipe, Resource, Tank
from repro.sim.stats import OpCounter

from .machine import MachineSpec, PerfParams


class Server:
    """One I/O server (GPFS NSD server / Lustre OSS) and its disk array.

    The array is modelled as ``server_concurrency`` channels over a shared
    sustained bandwidth.  Interleaving many concurrent streams on one array
    costs positioning time, captured by an efficiency factor
    ``1 / (1 + k * open_streams)`` applied to sequential transfers — this is
    what keeps PLFS's many-dropping layout from scaling for free.
    """

    def __init__(self, env: Environment, perf: PerfParams, sid: int):
        self.env = env
        self.perf = perf
        self.sid = sid
        self.channel = Resource(env, perf.server_concurrency)
        #: streams (droppings / shared-file lanes) currently open here
        self.open_streams = 0
        self.bytes_serviced = 0.0
        self.ops_serviced = 0

    # ------------------------------------------------------------------ #

    def stream_opened(self) -> None:
        self.open_streams += 1

    def stream_closed(self) -> None:
        self.open_streams = max(0, self.open_streams - 1)

    def effective_bandwidth(self) -> float:
        perf = self.perf
        share = perf.server_bandwidth / perf.server_concurrency
        return share / (1.0 + perf.stream_interleave_factor * self.open_streams)

    def service_time(self, nbytes: float, *, sequential: bool) -> float:
        t = self.perf.server_op_overhead + nbytes / self.effective_bandwidth()
        if not sequential:
            t += self.perf.seek_time
        return t

    def io(self, nbytes: float, *, sequential: bool) -> Generator:
        """Process: one request against this server's array."""
        yield self.channel.request()
        try:
            yield self.env.timeout(self.service_time(nbytes, sequential=sequential))
        finally:
            self.channel.release()
        self.bytes_serviced += nbytes
        self.ops_serviced += 1


class MetadataService:
    """The metadata path: Lustre's dedicated MDS or GPFS's distributed one.

    Service time grows with the queue observed at arrival
    (``base * (1 + contention * depth)``): under a create storm the journal
    and lock traffic thrash, which is the mechanism behind the paper's
    Fig. 5 collapse.  With ``mds_count > 1`` operations hash across
    independent servers and the per-server queues stay shallow (GPFS).
    """

    def __init__(self, env: Environment, perf: PerfParams):
        self.env = env
        self.perf = perf
        self._servers = [Resource(env, 1) for _ in range(perf.mds_count)]
        self.ops = OpCounter()
        self._longest_queue = 0
        self._create_depth = 0
        self._peak_create_depth = 0
        #: cumulative service time spent on metadata operations, summed
        #: over the servers (for utilisation / bottleneck attribution)
        self.busy_seconds = 0.0
        #: failure accounting (see :meth:`schedule_outage`)
        self.outages = 0
        self.outage_seconds = 0.0
        self.ops_delayed_by_outage = 0
        self._outage_active = False

    @property
    def longest_observed_queue(self) -> int:
        return self._longest_queue

    @property
    def peak_create_depth(self) -> int:
        return self._peak_create_depth

    def schedule_outage(self, start: float, duration: float) -> None:
        """Register a metadata-service outage: at simulated time *start*
        every metadata server is seized for *duration* seconds.

        Models an MDS failover window (or the recovery pause while a tool
        like ``repro-fsck`` repairs on-disk state): in-flight operations
        finish, newly arriving ones queue behind the outage and drain when
        it lifts.  Operations arriving during the outage are counted in
        :attr:`ops_delayed_by_outage`; the extra latency shows up in the
        ordinary queueing accounting (``total_wait_time`` per server) and
        in the run's elapsed time.
        """
        if start < 0 or duration <= 0:
            raise ValueError("outage needs start >= 0 and duration > 0")
        self.env.process(self._outage(start, duration))

    def _outage(self, start: float, duration: float) -> Generator:
        yield self.env.timeout(start)
        self.outages += 1
        self.outage_seconds += duration
        self._outage_active = True
        # Seize every server slot; in-flight operations complete first
        # (FCFS), exactly like a failover that drains the request queue.
        grants = [server.request() for server in self._servers]
        for grant in grants:
            yield grant
        try:
            yield self.env.timeout(duration)
        finally:
            self._outage_active = False
            for server in self._servers:
                server.release()

    @property
    def outage_active(self) -> bool:
        return self._outage_active

    def op(self, kind: str, key: int = 0, *, heavy: bool = False) -> Generator:
        """Process: one metadata operation.

        Plain operations (stats, markers/tiny creates, unlinks, mkdirs)
        pay the base service plus mild linear queueing.  *Heavy* creates —
        data-file creates that allocate storage objects (Lustre OST
        objects / GPFS inode+block maps) — cost a weight multiple of the
        base and, once outstanding heavy creates exceed what the MDS
        journal and caches absorb, degrade steeply (the
        ``(c * creates)**exp`` thrash term — the Fig. 5 collapse).  Keying
        the thrash on heavy creates rather than total queue depth lets a
        collective open storm of plain markers (BT at 4,096 cores) survive
        while FLASH-IO's per-rank dropping creates melt the same server.
        """
        self.ops.hit(kind)
        if self._outage_active:
            self.ops_delayed_by_outage += 1
        server = self._servers[key % len(self._servers)]
        depth = server.queue_length
        if depth > self._longest_queue:
            self._longest_queue = depth
        is_create = heavy
        factor = 1.0 + self.perf.mds_linear * depth
        weight = 1.0
        if is_create:
            weight = self.perf.mds_create_weight
            self._create_depth += 1
            if self._create_depth > self._peak_create_depth:
                self._peak_create_depth = self._create_depth
            factor += (
                self.perf.mds_contention * self._create_depth
            ) ** self.perf.mds_contention_exp
        try:
            service = self.perf.mds_base_service * weight * factor
            self.busy_seconds += service
            yield from server.use(service)
        finally:
            if is_create:
                self._create_depth -= 1

    def ops_issued(self) -> int:
        return self.ops.total()

    def op_counts(self) -> dict[str, int]:
        """Per-kind operation counts (copy; safe to serialise)."""
        return dict(self.ops.counts)

    def utilisation(self, horizon: float) -> float:
        """Mean busy fraction of the metadata servers over *horizon*."""
        if horizon <= 0:
            return 0.0
        return self.busy_seconds / (horizon * len(self._servers))


class WriteBackCache:
    """Per-process client write cache with a dirty-byte budget.

    ``write`` absorbs a payload at memory-copy speed once the budget has
    room (blocking while it is full) and queues an asynchronous drain
    through the supplied backend writer.  The budget is released only when
    the backend write completes — so sustained writing beyond the budget
    degrades to the backend rate, while short bursts appear instant.  This
    is the mechanism behind the paper's Fig. 4 cache effects.
    """

    def __init__(self, env: Environment, perf: PerfParams):
        self.env = env
        self.perf = perf
        self.tank = Tank(env, perf.cache_dirty_per_proc)
        self._pending: deque[tuple[float, Callable[[float], Generator]]] = deque()
        self._draining = False
        self.absorbed_bytes = 0.0

    def write(self, nbytes: float, drain_fn: Callable[[float], Generator]) -> Generator:
        """Process: absorb *nbytes* (queueing an async backend drain)."""
        yield self.tank.put(nbytes)
        yield self.env.timeout(nbytes / self.perf.memcpy_bandwidth)
        self.absorbed_bytes += nbytes
        self._pending.append((nbytes, drain_fn))
        if not self._draining:
            self._draining = True
            self.env.process(self._drain_loop())

    def _drain_loop(self) -> Generator:
        while self._pending:
            nbytes, drain_fn = self._pending.popleft()
            yield from drain_fn(nbytes)
            self.tank.get_up_to(nbytes)
        self._draining = False

    @property
    def dirty(self) -> float:
        return self.tank.level


class Platform:
    """All shared hardware for one simulation run."""

    def __init__(self, env: Environment, spec: MachineSpec):
        self.env = env
        self.spec = spec
        self.perf = spec.perf
        self.servers = [Server(env, spec.perf, i) for i in range(spec.io_servers)]
        self.mds = MetadataService(env, spec.perf)
        self._nics: dict[int, BandwidthPipe] = {}
        self._clients: dict[int, BandwidthPipe] = {}
        self._caches: dict[tuple[int, int], WriteBackCache] = {}
        self._stream_rr = 0
        #: shared files opened on this platform (for lock-wait reporting)
        self.shared_files: list = []

    def register_shared_file(self, f) -> None:
        self.shared_files.append(f)

    # ------------------------------------------------------------------ #
    # per-node resources (lazy: a run touches only the nodes it uses)
    # ------------------------------------------------------------------ #

    def nic(self, node: int) -> BandwidthPipe:
        pipe = self._nics.get(node)
        if pipe is None:
            pipe = BandwidthPipe(
                self.env,
                self.perf.nic_bandwidth,
                latency=self.perf.nic_latency,
            )
            self._nics[node] = pipe
        return pipe

    def client(self, node: int) -> BandwidthPipe:
        """The node's file-system client daemon (GPFS mmfsd / llite)."""
        pipe = self._clients.get(node)
        if pipe is None:
            pipe = BandwidthPipe(self.env, self.perf.client_bandwidth)
            self._clients[node] = pipe
        return pipe

    def cache(self, node: int, proc: int) -> WriteBackCache:
        key = (node, proc)
        cache = self._caches.get(key)
        if cache is None:
            cache = WriteBackCache(self.env, self.perf)
            self._caches[key] = cache
        return cache

    # ------------------------------------------------------------------ #
    # server placement
    # ------------------------------------------------------------------ #

    def assign_server(self) -> Server:
        """Round-robin placement of a new stream (dropping / lane)."""
        server = self.servers[self._stream_rr % len(self.servers)]
        self._stream_rr += 1
        return server

    def server_for(self, key: int) -> Server:
        return self.servers[key % len(self.servers)]

    # ------------------------------------------------------------------ #
    # aggregate accounting
    # ------------------------------------------------------------------ #

    def total_bytes_serviced(self) -> float:
        return sum(s.bytes_serviced for s in self.servers)

    def total_dirty(self) -> float:
        return sum(c.dirty for c in self._caches.values())

    def shared_lock_wait_seconds(self) -> float:
        """Total time writers spent queued on shared-file lock lanes."""
        return sum(f.lock_wait_seconds() for f in self.shared_files)

    def report(self, horizon: float | None = None) -> dict:
        """Bottleneck snapshot: utilisations and load counters.

        *horizon* defaults to the current simulated time; pass the
        measured phase length to get phase-relative utilisations.
        """
        horizon = self.env.now if horizon is None else horizon
        server_util = [s.channel.utilisation(horizon) for s in self.servers]
        return {
            "horizon": horizon,
            "server_utilisation": server_util,
            "server_utilisation_mean": (
                sum(server_util) / len(server_util) if server_util else 0.0
            ),
            "bytes_serviced": self.total_bytes_serviced(),
            "open_streams": sum(s.open_streams for s in self.servers),
            "io_servers": len(self.servers),
            "mds_ops": self.mds.ops_issued(),
            "mds_op_counts": self.mds.op_counts(),
            "mds_peak_create_depth": self.mds.peak_create_depth,
            "mds_busy_seconds": self.mds.busy_seconds,
            "mds_utilisation": self.mds.utilisation(horizon),
            "mds_count": self.perf.mds_count,
            "mds_outages": self.mds.outages,
            "mds_outage_seconds": self.mds.outage_seconds,
            "mds_ops_delayed_by_outage": self.mds.ops_delayed_by_outage,
            "shared_lock_wait_seconds": self.shared_lock_wait_seconds(),
            "nic_utilisation_mean": (
                sum(p.utilisation(horizon) for p in self._nics.values())
                / len(self._nics)
                if self._nics
                else 0.0
            ),
            "cache_dirty_bytes": self.total_dirty(),
        }

    def render_report(self, horizon: float | None = None) -> str:
        data = self.report(horizon)
        return (
            f"platform after {data['horizon']:.2f}s: "
            f"servers {data['server_utilisation_mean']:.0%} busy, "
            f"NICs {data['nic_utilisation_mean']:.0%}, "
            f"{data['bytes_serviced'] / 1e9:.2f} GB serviced, "
            f"{data['mds_ops']} metadata ops "
            f"(peak create depth {data['mds_peak_create_depth']}), "
            f"{data['cache_dirty_bytes'] / 1e6:.1f} MB still dirty"
        )
