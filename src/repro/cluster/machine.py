"""Machine descriptions: Table I of the paper plus calibrated performance.

Two kinds of data live here:

1. The *factual* platform inventory from Table I (node counts, disks,
   interconnect, file system), rendered verbatim by the Table I benchmark.
2. *Calibrated* performance parameters (:class:`PerfParams`) that drive the
   discrete-event model.  The paper does not publish low-level service
   times, so these are fitted so the simulated curves land in the bands the
   paper's figures report (see EXPERIMENTS.md); the *mechanisms* — lock
   serialisation, write-back caching, metadata-server queueing, FUSE
   request chunking — are what produce the shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.stats import GB, MB

KB = 1024.0


@dataclass(frozen=True)
class DiskArraySpec:
    """One row block of Table I (storage or metadata disks)."""

    count: int
    disk_type: str
    rpm: int
    bus: str
    raid: str


@dataclass(frozen=True)
class PerfParams:
    """Calibrated service-time parameters for the simulator."""

    #: per-node injection bandwidth (QDR IB ~ 3.2 GB/s), bytes/s
    nic_bandwidth: float
    #: per-message network latency, seconds
    nic_latency: float
    #: per-node file-system client daemon throughput (GPFS mmfsd / Lustre
    #: llite), bytes/s — limits what one node can push regardless of NIC
    client_bandwidth: float
    #: sustained sequential bandwidth of one I/O server's array, bytes/s
    server_bandwidth: float
    #: average positioning cost paid by a non-sequential server op, seconds
    seek_time: float
    #: fixed software cost per server request (RPC, allocation), seconds
    server_op_overhead: float
    #: concurrent requests one server services (disk channel width)
    server_concurrency: int
    #: concurrent streams a *single shared file* supports file-system-wide
    #: (GPFS token serialisation => 1; Lustre stripes => stripe count)
    shared_file_concurrency: int
    #: efficiency decay per concurrent stream per server: interleaving many
    #: log streams on one array costs seeks; eff = 1 / (1 + k * streams)
    stream_interleave_factor: float
    #: metadata: base service time per op, seconds
    mds_base_service: float
    #: metadata: file/object creates cost this multiple of a plain op
    #: (Lustre creates preallocate OST objects; GPFS allocates inodes)
    mds_create_weight: float
    #: metadata: mild linear queue degradation (lock ping-pong)
    mds_linear: float
    #: metadata: thrash coefficient; service *= 1 + linear*q + (c*q)**exp
    mds_contention: float
    #: metadata: thrash exponent (>1 models journal thrash that sets in
    #: abruptly once the create storm exceeds what the MDS cache absorbs)
    mds_contention_exp: float
    #: number of independent metadata servers (GPFS distributes; Lustre 1)
    mds_count: int
    #: client cache: writes at or below this size go to the write-back
    #: cache; larger writes are written through (the Fig. 4 threshold)
    cache_write_through: float
    #: client cache: per-process dirty-byte budget (Lustre max_dirty_mb)
    cache_dirty_per_proc: float
    #: memory copy bandwidth on a node (cache absorption speed), bytes/s
    memcpy_bandwidth: float
    #: FUSE kernel module: requests are split into chunks of this size
    fuse_max_write: float
    #: FUSE per-request user/kernel crossing cost, seconds
    fuse_request_overhead: float
    #: per MPI-IO call software overhead (collective setup etc.), seconds
    mpi_call_overhead: float
    #: extra on-node synchronisation per additional process per node
    ppn_sync_overhead: float


@dataclass(frozen=True)
class MachineSpec:
    """One column of Table I plus its calibrated performance parameters."""

    name: str
    processor: str
    cpu_ghz: float
    cores_per_node: int
    nodes: int
    interconnect: str
    filesystem: str
    io_servers: int
    theoretical_bw: str
    storage: DiskArraySpec
    metadata: DiskArraySpec
    linpack: str
    perf: PerfParams = None  # type: ignore[assignment]

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def with_perf(self, **kwargs) -> "MachineSpec":
        """A copy with some performance parameters overridden (for
        ablations and what-if studies)."""
        return replace(self, perf=replace(self.perf, **kwargs))


#: Minerva (Univ. of Warwick CSC): 258 nodes, GPFS with 2 I/O servers.
MINERVA = MachineSpec(
    name="Minerva",
    processor="Intel Xeon 5650",
    cpu_ghz=2.66,
    cores_per_node=12,
    nodes=258,
    interconnect="QLogic TrueScale 4X QDR InfiniBand",
    filesystem="GPFS",
    io_servers=2,
    theoretical_bw="~4 GB/s",
    storage=DiskArraySpec(96, "2 TB", 7200, "Nearline SAS", "6 (8 + 2)"),
    metadata=DiskArraySpec(24, "300 GB", 15000, "SAS", "10"),
    linpack="~30 TFLOP/s",
    perf=PerfParams(
        nic_bandwidth=3.2 * GB,
        nic_latency=2e-6,
        client_bandwidth=120 * MB,
        # Two NSD servers; 7.2k RPM nearline arrays sustain modest rates
        # for the small-file-count workloads in Fig. 3.
        server_bandwidth=150 * MB,
        seek_time=8e-3,
        server_op_overhead=1.5e-3,
        server_concurrency=1,
        # GPFS byte-range token serialisation: one effective write stream
        # per shared file (Fig. 3's flat MPI-IO curves).
        shared_file_concurrency=1,
        stream_interleave_factor=0.008,
        # GPFS distributes metadata across its servers on fast 15k disks.
        mds_base_service=0.4e-3,
        mds_create_weight=4.0,
        mds_linear=0.001,
        mds_contention=0.0,
        mds_contention_exp=1.0,
        mds_count=2,
        cache_write_through=4 * MB,
        cache_dirty_per_proc=32 * MB,
        memcpy_bandwidth=2.5 * GB,
        fuse_max_write=128 * KB,
        fuse_request_overhead=0.3e-3,
        mpi_call_overhead=1.5e-3,
        ppn_sync_overhead=0.4e-3,
    ),
)

#: Sierra (LLNL OCF): 1,849 nodes, Lustre (lscratchc) with 24 OSS + 1 MDS.
SIERRA = MachineSpec(
    name="Sierra",
    processor="Intel Xeon 5660",
    cpu_ghz=2.8,
    cores_per_node=12,
    nodes=1849,
    interconnect="QDR InfiniBand",
    filesystem="Lustre",
    io_servers=24,
    theoretical_bw="~30 GB/s",
    storage=DiskArraySpec(3600, "450 GB", 10000, "SAS", "6 (8 + 2)"),
    metadata=DiskArraySpec(30, "147 GB", 15000, "SAS", "10"),
    linpack="~260 TFLOP/s",
    perf=PerfParams(
        nic_bandwidth=3.2 * GB,
        nic_latency=2e-6,
        client_bandwidth=350 * MB,
        # lscratchc is islanded/shared; sustained per-OSS rates are far
        # below the marketing peak (paper measures <2 GB/s aggregate).
        server_bandwidth=80 * MB,
        seek_time=6e-3,
        server_op_overhead=0.6e-3,
        server_concurrency=1,
        # Lustre extent locks permit one writer per stripe; lscratchc used
        # a modest default stripe count.
        shared_file_concurrency=8,
        stream_interleave_factor=0.008,
        # One dedicated MDS: base service fast, but queue contention
        # (journal/lock thrash) degrades it under create storms (Fig. 5).
        mds_base_service=0.3e-3,
        mds_create_weight=4.0,
        mds_linear=0.001,
        mds_contention=0.00073,
        mds_contention_exp=8.0,
        mds_count=1,
        cache_write_through=4 * MB,
        cache_dirty_per_proc=32 * MB,
        memcpy_bandwidth=2.5 * GB,
        fuse_max_write=128 * KB,
        fuse_request_overhead=0.3e-3,
        mpi_call_overhead=1.5e-3,
        ppn_sync_overhead=0.4e-3,
    ),
)

MACHINES = {"minerva": MINERVA, "sierra": SIERRA}


def table1_rows() -> list[tuple[str, str, str]]:
    """Rows of Table I: (field, Minerva value, Sierra value)."""
    def disks(d: DiskArraySpec) -> list[tuple[str, str]]:
        return [
            ("Number of Disks", str(d.count)),
            ("Disk Type", d.disk_type),
            ("Disk Speed", f"{d.rpm:,} RPM"),
            ("Bus Type", d.bus),
            ("Raid Level", d.raid),
        ]

    rows: list[tuple[str, str, str]] = []
    top = [
        ("Processor", MINERVA.processor, SIERRA.processor),
        ("CPU Speed", f"{MINERVA.cpu_ghz} GHz", f"{SIERRA.cpu_ghz} GHz"),
        ("Cores per Node", str(MINERVA.cores_per_node), str(SIERRA.cores_per_node)),
        ("Nodes", f"{MINERVA.nodes:,}", f"{SIERRA.nodes:,}"),
        ("Interconnect", MINERVA.interconnect, SIERRA.interconnect),
        ("File System", MINERVA.filesystem, SIERRA.filesystem),
        ("I/O Servers / OSS", str(MINERVA.io_servers), str(SIERRA.io_servers)),
        ("Theoretical Bandwidth", MINERVA.theoretical_bw, SIERRA.theoretical_bw),
    ]
    rows.extend(top)
    for (fm, vm), (fs, vs) in zip(disks(MINERVA.storage), disks(SIERRA.storage)):
        rows.append((f"Storage: {fm}", vm, vs))
    for (fm, vm), (fs, vs) in zip(disks(MINERVA.metadata), disks(SIERRA.metadata)):
        rows.append((f"Metadata: {fm}", vm, vs))
    return rows
