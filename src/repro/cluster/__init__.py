"""``repro.cluster`` — simulated HPC platform hardware.

Machine inventories (Table I of the paper) and the queueing-network runtime
built from them: I/O servers with seek-aware arrays, a metadata service,
per-node NICs and per-process write-back caches.
"""

from .machine import (
    MACHINES,
    MINERVA,
    SIERRA,
    DiskArraySpec,
    MachineSpec,
    PerfParams,
    table1_rows,
)
from .platform import MetadataService, Platform, Server, WriteBackCache

__all__ = [
    "MachineSpec",
    "DiskArraySpec",
    "PerfParams",
    "MINERVA",
    "SIERRA",
    "MACHINES",
    "table1_rows",
    "Platform",
    "Server",
    "MetadataService",
    "WriteBackCache",
]
