"""Simulated PLFS container behaviour on the cluster file system.

Maps the *real* container mechanics of :mod:`repro.plfs` onto the simulated
platform's cost model:

- container creation and every dropping create is a metadata operation —
  the load that melts a dedicated Lustre MDS at scale (paper Fig. 5);
- each writing process gets a private data dropping (a sequential
  :class:`~repro.fs.parallel.StreamFile`) plus an index dropping;
- index records are buffered in memory and flushed at close (PLFS's
  ``buffer_index`` default), costing one small stream write;
- opening for read pays the global-index build: directory scans plus one
  small read per index dropping.

The metadata op counts per event mirror what the real implementation in
``repro.plfs`` does on the backend (mkdir container + access + creator +
openhosts + meta; two creates per dropping pair; one marker per open).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.platform import Platform
from repro.plfs.index import RECORD_SIZE

from .parallel import PosixClient, StreamFile

#: metadata ops to create the container skeleton (mkdir, access file,
#: creator, openhosts dir, meta dir) — matches repro.plfs.container.create
CONTAINER_CREATE_OPS = 5
#: metadata ops per (data, index) dropping pair creation
DROPPING_CREATE_OPS = 2
#: metadata ops at close (meta dropping create + openhost unlink)
CLOSE_OPS = 2


class SimWriterState:
    """Per-(node, proc) open-for-write state inside a container."""

    __slots__ = ("data", "records", "closed")

    def __init__(self, data: StreamFile):
        self.data = data
        self.records = 0
        self.closed = False


class PlfsContainerSim:
    """One logical PLFS file on the simulated platform."""

    def __init__(self, platform: Platform, name: str, *, log_structured: bool = True):
        self.platform = platform
        self.name = name
        #: ablation hook (paper §V.A): with ``log_structured=False`` the
        #: per-process droppings are written *in place* (each write pays
        #: positioning time), isolating the file-partitioning benefit.
        self.log_structured = log_structured
        self.created = False
        self._hostdirs: set[int] = set()
        self._writers: dict[tuple[int, int], SimWriterState] = {}
        self._mds_key = hash(name) & 0x7FFFFFFF
        self._index_built = False

    # ------------------------------------------------------------------ #

    @property
    def dropping_count(self) -> int:
        return len(self._writers)

    def writers(self) -> list[SimWriterState]:
        return list(self._writers.values())

    def logical_bytes(self) -> float:
        return sum(w.data.size for w in self._writers.values())

    # ------------------------------------------------------------------ #

    def register_open(self, client: PosixClient) -> Generator:
        """Process: plfs_open(O_WRONLY|O_CREAT) from one rank.

        First opener builds the container skeleton; first opener per node
        makes the hostdir; every opener registers an openhost marker.
        Dropping pairs are created lazily at the rank's first write,
        exactly as the real write path does.
        """
        mds = self.platform.mds
        if not self.created:
            self.created = True
            for _ in range(CONTAINER_CREATE_OPS):
                yield from mds.op("container_create", self._mds_key)
        if client.node not in self._hostdirs:
            self._hostdirs.add(client.node)
            yield from mds.op("hostdir_mkdir", self._mds_key + client.node)
        yield from mds.op("openhost_create", self._mds_key + client.proc)

    def _ensure_dropping(self, client: PosixClient) -> Generator:
        key = (client.node, client.proc)
        if key not in self._writers:
            data = StreamFile(
                self.platform, f"{self.name}/data.{client.node}.{client.proc}"
            )
            self._writers[key] = SimWriterState(data)
            for _ in range(DROPPING_CREATE_OPS):
                # The only heavy metadata ops: data/index dropping creates
                # allocate storage objects.
                yield from self.platform.mds.op(
                    "dropping_create", self._mds_key + client.proc, heavy=True
                )

    def write(
        self,
        client: PosixClient,
        nbytes: float,
        *,
        cache_gate: float | None = None,
    ) -> Generator:
        """Process: plfs_write — a log append to the caller's dropping."""
        yield from self._ensure_dropping(client)
        state = self._writers[(client.node, client.proc)]
        state.records += 1
        yield from client.append_stream(
            state.data,
            nbytes,
            cache_gate=cache_gate,
            sequential=self.log_structured,
        )

    def close_write(self, client: PosixClient) -> Generator:
        """Process: plfs_close — flush the index dropping, drop metadata."""
        state = self._writers.get((client.node, client.proc))
        if state is None or state.closed:
            # Opened but never wrote: just the openhost unlink.
            yield from self.platform.mds.op(
                "close_meta", self._mds_key + client.proc
            )
            return
        state.closed = True
        if state.records:
            # Buffered index records flushed as one small sequential write.
            yield from client.append_stream(state.data, state.records * RECORD_SIZE)
        state.data.close()
        for _ in range(CLOSE_OPS):
            yield from self.platform.mds.op("close_meta", self._mds_key + client.proc)

    # ------------------------------------------------------------------ #

    def open_read(self, client: PosixClient) -> Generator:
        """Process: plfs_open(O_RDONLY) — the global-index build.

        The first opener pays the full build: a readdir of the container
        and each hostdir plus one small read per index dropping.  Later
        openers pay a single stat (the ROMIO PLFS driver flattens the
        index once and broadcasts it).
        """
        mds = self.platform.mds
        if self._index_built:
            yield from mds.op("container_stat", self._mds_key)
            return
        self._index_built = True
        yield from mds.op("container_readdir", self._mds_key)
        for node in sorted(self._hostdirs):
            yield from mds.op("hostdir_readdir", self._mds_key + node)
        for state in self._writers.values():
            yield from client.read_stream(
                state.data, max(state.records, 1) * RECORD_SIZE, sequential=False
            )

    def read_own(self, client: PosixClient, nbytes: float) -> Generator:
        """Process: plfs_read of data this rank wrote (N-N read-back, the
        pattern the paper's read benchmarks use) — a sequential scan of the
        rank's own dropping.

        Collective writes leave droppings only on the aggregators, so an
        independent read (``romio_cb_read=false``) from a non-writer rank
        scans the dropping holding its node's bytes — its node aggregator's,
        falling back to any dropping for a fully remote layout."""
        state = self._writers.get((client.node, client.proc))
        if state is None:
            state = self._writers.get((client.node, 0)) or next(
                iter(self._writers.values()), None
            )
        if state is None:
            return
        yield from client.read_stream(state.data, nbytes, sequential=True)
