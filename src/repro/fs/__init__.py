"""``repro.fs`` — simulated parallel file-system data paths.

Shared files with lane/lock serialisation (GPFS/Lustre single-file
behaviour), private append streams (file-per-process / PLFS droppings),
and the PLFS container cost model used by the at-scale experiments.
"""

from .parallel import STRIPE_UNIT, PosixClient, SharedFile, StreamFile
from .plfssim import (
    CLOSE_OPS,
    CONTAINER_CREATE_OPS,
    DROPPING_CREATE_OPS,
    PlfsContainerSim,
)

__all__ = [
    "SharedFile",
    "StreamFile",
    "PosixClient",
    "STRIPE_UNIT",
    "PlfsContainerSim",
    "CONTAINER_CREATE_OPS",
    "DROPPING_CREATE_OPS",
    "CLOSE_OPS",
]
