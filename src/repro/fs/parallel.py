"""Simulated cluster file-system data paths.

Two file shapes exist, matching the paper's dichotomy:

- :class:`SharedFile` — one POSIX file written by many clients.  Writes are
  striped over a small number of *lanes* (GPFS: effectively one, because
  byte-range write tokens serialise; Lustre: the stripe count).  Every lane
  is a capacity-1 resource: concurrent writes to the same region of the
  same file queue up — the serialisation PLFS exists to remove.  Strided
  access pays positioning (seek) time.

- :class:`StreamFile` — a private per-process file (a PLFS data dropping or
  a file-per-process output).  Appends are sequential (no seek: the log-
  structured advantage) and need no inter-client lock (the partitioning
  advantage), but every open stream degrades its server's efficiency a
  little (interleaving cost).

A :class:`PosixClient` issues operations from a given (node, process),
passing each transfer through the node's client daemon, the NIC, and the
target server's disk channel; writes at or below the write-through
threshold are absorbed by the process's write-back cache.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.platform import Platform, Server
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.sim.stats import MB

#: stripe unit for shared files (the granularity of lane assignment)
STRIPE_UNIT = 4 * MB


class SharedFile:
    """One shared POSIX file, striped over its lock lanes."""

    def __init__(self, platform: Platform, name: str):
        self.platform = platform
        self.name = name
        n_lanes = platform.perf.shared_file_concurrency
        self.lanes: list[tuple[Resource, Server]] = []
        for _ in range(n_lanes):
            server = platform.assign_server()
            server.stream_opened()
            self.lanes.append((Resource(platform.env, 1), server))
        self.size = 0
        self._closed = False
        platform.register_shared_file(self)

    def lock_wait_seconds(self) -> float:
        """Total time writers queued behind this file's lock lanes."""
        return sum(lane.total_wait_time for lane, _ in self.lanes)

    def lane_for(self, offset: float) -> tuple[Resource, Server]:
        return self.lanes[int(offset // STRIPE_UNIT) % len(self.lanes)]

    def segments(self, offset: float, nbytes: float) -> list[tuple[float, float]]:
        """Split [offset, offset+nbytes) at stripe-unit boundaries."""
        out: list[tuple[float, float]] = []
        pos, end = offset, offset + nbytes
        while pos < end:
            boundary = (pos // STRIPE_UNIT + 1) * STRIPE_UNIT
            take = min(boundary, end) - pos
            out.append((pos, take))
            pos += take
        return out

    def close(self) -> None:
        if not self._closed:
            for _, server in self.lanes:
                server.stream_closed()
            self._closed = True


class StreamFile:
    """A private append-only stream (PLFS dropping / file-per-process)."""

    def __init__(self, platform: Platform, name: str):
        self.platform = platform
        self.name = name
        self.server = platform.assign_server()
        self.server.stream_opened()
        self.size = 0.0
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self.server.stream_closed()
            self._closed = True


class PosixClient:
    """Issues simulated data operations from one (node, process)."""

    def __init__(self, platform: Platform, node: int, proc: int):
        self.platform = platform
        self.env: Environment = platform.env
        self.node = node
        self.proc = proc
        self.perf = platform.perf

    # ------------------------------------------------------------------ #
    # transport stages
    # ------------------------------------------------------------------ #

    def _transport(self, nbytes: float) -> Generator:
        """Client daemon + NIC stages (same for reads and writes)."""
        yield from self.platform.client(self.node).transfer(nbytes)
        yield from self.platform.nic(self.node).transfer(nbytes)

    # ------------------------------------------------------------------ #
    # shared-file path
    # ------------------------------------------------------------------ #

    def _shared_segment(
        self, f: SharedFile, offset: float, nbytes: float, *, sequential: bool
    ) -> Generator:
        lane, server = f.lane_for(offset)
        # Transport happens before the lane lock: clients pipeline their
        # transfers while the lane (the file-level serialisation point)
        # covers only the storage operation.
        yield from self._transport(nbytes)
        yield lane.request()
        try:
            yield from server.io(nbytes, sequential=sequential)
        finally:
            lane.release()

    def _shared_op(
        self, f: SharedFile, offset: float, nbytes: float, *, sequential: bool
    ) -> Generator:
        segments = f.segments(offset, nbytes)
        if len(segments) == 1:
            off, take = segments[0]
            yield from self._shared_segment(f, off, take, sequential=sequential)
        else:
            yield self.env.all_of(
                [
                    self.env.process(
                        self._shared_segment(f, off, take, sequential=sequential)
                    )
                    for off, take in segments
                ]
            )

    def write_shared(
        self, f: SharedFile, offset: float, nbytes: float, *, sequential: bool = False
    ) -> Generator:
        """Process: write [offset, offset+nbytes) of a shared file.

        Shared-file writes are strided between clients, so the server pays
        positioning time on every operation (``sequential=True`` is the
        ablation hook for a log-structured *shared* file, paper §V.A).
        They also never linger in the client cache: conflicting extent
        locks from neighbouring writers force the pages out (Lustre lock
        revocation / GPFS token steal), so shared writes are effectively
        write-through — one half of why PLFS's file-per-process layout
        wins.
        """
        f.size = max(f.size, offset + nbytes)
        yield from self._shared_op(f, offset, nbytes, sequential=sequential)

    def read_shared(self, f: SharedFile, offset: float, nbytes: float) -> Generator:
        """Process: read a shared-file extent (cold, uncached)."""
        yield from self._shared_op(f, offset, nbytes, sequential=False)

    # ------------------------------------------------------------------ #
    # private-stream path
    # ------------------------------------------------------------------ #

    def _stream_op(self, f: StreamFile, nbytes: float, *, sequential: bool) -> Generator:
        yield from self._transport(nbytes)
        yield from f.server.io(nbytes, sequential=sequential)

    def append_stream(
        self,
        f: StreamFile,
        nbytes: float,
        *,
        cache_gate: float | None = None,
        sequential: bool = True,
    ) -> Generator:
        """Process: append to a private stream (log-structured write).

        *cache_gate* is the application-level write size governing cache
        eligibility (it differs from *nbytes* under collective buffering,
        where the aggregator writes many ranks' data in one call).  Writes
        whose gate size is at or below the write-through threshold are
        absorbed by the write-back cache — private files never suffer lock
        revocations, so their dirty pages can linger (the paper's Fig. 4
        cache effects, exclusive to the PLFS routes).
        """
        f.size += nbytes
        gate = nbytes if cache_gate is None else cache_gate
        if (
            gate <= self.perf.cache_write_through
            and nbytes <= self.perf.cache_dirty_per_proc
        ):
            cache = self.platform.cache(self.node, self.proc)

            def drain(n: float, _f=f, _seq=sequential) -> Generator:
                yield from self._stream_op(_f, n, sequential=_seq)

            yield from cache.write(nbytes, drain)
        else:
            yield from self._stream_op(f, nbytes, sequential=sequential)

    def read_stream(
        self, f: StreamFile, nbytes: float, *, sequential: bool = True
    ) -> Generator:
        """Process: read from a private stream (sequential scan by
        default; index-directed jumps pass ``sequential=False``)."""
        yield from self._stream_op(f, nbytes, sequential=sequential)
