"""The plfsd wire protocol: length-prefixed binary frames.

One frame is a 4-byte big-endian payload length followed by the payload.
Requests carry ``(opcode u8, request_id u32, op-specific fields)``;
responses carry ``(status u8, request_id u32, body)`` where the body is
the opcode's reply fields on success or the *typed error envelope*
``(errno i32, kind str, message str)`` on failure.  ``kind`` names the
server-side exception class, so the client can re-raise the same
:mod:`repro.plfs.errors` type the in-process path would have raised —
daemon and direct-path callers see identical failures.

Field encoding is deliberately minimal: fixed-width integers plus
length-prefixed UTF-8 strings and raw byte blobs, described per opcode by
a spec tuple (see :data:`REQUEST_SPECS` / :data:`REPLY_SPECS`) so both
sides pack and unpack from one table.  No pickling, no JSON on the hot
path — an append's payload bytes travel uncopied inside the frame.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Frames above this are protocol violations (guards the server against a
#: garbage length prefix allocating gigabytes).  Generous enough for the
#: largest sane append through the daemon.
MAX_FRAME = 64 * 1024 * 1024

LEN_PREFIX = struct.Struct("!I")
REQ_HEADER = struct.Struct("!BI")  # opcode, request_id
REP_HEADER = struct.Struct("!BI")  # status, request_id

STATUS_OK = 0
STATUS_ERROR = 1

# ---------------------------------------------------------------------- #
# opcodes
# ---------------------------------------------------------------------- #

OP_HELLO = 1
OP_OPEN = 2
OP_CLOSE = 3
OP_WRITE = 4
OP_READ = 5
OP_SYNC = 6
OP_GETATTR = 7
OP_TRUNC = 8
OP_CREATE = 9
OP_UNLINK = 10
OP_STATS = 11
OP_PING = 12
OP_SHUTDOWN = 13
OP_ATTACH_SHM = 14
OP_WRITE_SHM = 15

OP_NAMES = {
    OP_HELLO: "hello",
    OP_OPEN: "open",
    OP_CLOSE: "close",
    OP_WRITE: "write",
    OP_READ: "read",
    OP_SYNC: "sync",
    OP_GETATTR: "getattr",
    OP_TRUNC: "trunc",
    OP_CREATE: "create",
    OP_UNLINK: "unlink",
    OP_STATS: "stats",
    OP_PING: "ping",
    OP_SHUTDOWN: "shutdown",
    OP_ATTACH_SHM: "attach_shm",
    OP_WRITE_SHM: "write_shm",
}

#: request body per opcode: a tuple of (name, type) fields, packed in order
REQUEST_SPECS: dict[int, tuple[tuple[str, str], ...]] = {
    OP_HELLO: (("name", "str"),),
    OP_OPEN: (("path", "str"), ("flags", "u32"), ("mode", "u32")),
    OP_CLOSE: (("handle", "u32"),),
    OP_WRITE: (("handle", "u32"), ("offset", "u64"), ("data", "bytes")),
    OP_READ: (("handle", "u32"), ("offset", "u64"), ("count", "u64")),
    OP_SYNC: (("handle", "u32"),),
    OP_GETATTR: (("handle", "u32"),),
    OP_TRUNC: (("handle", "u32"), ("offset", "u64")),
    OP_CREATE: (("path", "str"), ("mode", "u32")),
    OP_UNLINK: (("path", "str"),),
    OP_STATS: (),
    OP_PING: (),
    OP_SHUTDOWN: (),
    # The shared-memory data plane: large appends park their payload in a
    # client-owned shm segment and send only this descriptor — the daemon
    # appends straight from the mapped pages, so big writes never cross
    # the socket at all.
    OP_ATTACH_SHM: (("name", "str"), ("size", "u64")),
    OP_WRITE_SHM: (
        ("handle", "u32"),
        ("offset", "u64"),
        ("shm_off", "u64"),
        ("count", "u64"),
    ),
}

#: success-reply body per opcode
REPLY_SPECS: dict[int, tuple[tuple[str, str], ...]] = {
    OP_HELLO: (("client_id", "u32"), ("server_pid", "u32"), ("version", "u32")),
    OP_OPEN: (("handle", "u32"),),
    OP_CLOSE: (("refs", "u32"),),
    OP_WRITE: (("written", "u64"),),
    OP_READ: (("data", "bytes"),),
    OP_SYNC: (),
    OP_GETATTR: (("size", "u64"), ("mode", "u32"), ("mtime_ns", "u64")),
    OP_TRUNC: (),
    OP_CREATE: (),
    OP_UNLINK: (),
    OP_STATS: (("json", "bytes"),),
    OP_PING: (("server_pid", "u32"),),
    OP_SHUTDOWN: (),
    OP_ATTACH_SHM: (),
    OP_WRITE_SHM: (("written", "u64"),),
}

ERROR_SPEC: tuple[tuple[str, str], ...] = (
    ("errno", "i32"),
    ("kind", "str"),
    ("message", "str"),
)

VERSION = 1

_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I32 = struct.Struct("!i")


class ProtocolError(Exception):
    """A malformed frame or field — the peer broke the wire contract."""


@dataclass(frozen=True)
class Request:
    opcode: int
    request_id: int
    fields: dict

    @property
    def name(self) -> str:
        return OP_NAMES.get(self.opcode, f"op{self.opcode}")


@dataclass(frozen=True)
class Reply:
    status: int
    request_id: int
    fields: dict

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class RemoteError(OSError):
    """The decoded error envelope: what the server-side call raised.

    Carries the original errno and exception class name so callers (and
    tests) can match on either; being an :class:`OSError` it surfaces to
    interposed applications exactly like the in-process failure would.
    """

    def __init__(self, err: int, kind: str, message: str):
        super().__init__(err, message)
        self.kind = kind


# ---------------------------------------------------------------------- #
# field packing
# ---------------------------------------------------------------------- #


def _pack_fields(spec, values: dict) -> bytes:
    out = []
    for name, ftype in spec:
        value = values[name]
        if ftype == "u32":
            out.append(_U32.pack(value))
        elif ftype == "u64":
            out.append(_U64.pack(value))
        elif ftype == "i32":
            out.append(_I32.pack(value))
        elif ftype == "str":
            raw = value.encode("utf-8")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
        elif ftype == "bytes":
            out.append(_U32.pack(len(value)))
            out.append(bytes(value) if not isinstance(value, (bytes, bytearray)) else value)
        else:  # pragma: no cover - spec tables are static
            raise ProtocolError(f"unknown field type {ftype!r}")
    return b"".join(out)


def _unpack_fields(
    spec, buf: memoryview, pos: int, *, copy_bytes: bool = True
) -> tuple[dict, int]:
    values: dict = {}
    for name, ftype in spec:
        try:
            if ftype == "u32":
                (values[name],) = _U32.unpack_from(buf, pos)
                pos += 4
            elif ftype == "u64":
                (values[name],) = _U64.unpack_from(buf, pos)
                pos += 8
            elif ftype == "i32":
                (values[name],) = _I32.unpack_from(buf, pos)
                pos += 4
            elif ftype in ("str", "bytes"):
                (n,) = _U32.unpack_from(buf, pos)
                pos += 4
                if pos + n > len(buf):
                    raise ProtocolError(
                        f"field {name!r} claims {n} bytes past frame end"
                    )
                view = buf[pos : pos + n]
                pos += n
                if ftype == "str":
                    values[name] = bytes(view).decode("utf-8")
                else:
                    # With copy_bytes=False the payload stays a memoryview
                    # over the frame — the server threads it through to the
                    # writer's zero-copy append without ever duplicating it.
                    values[name] = bytes(view) if copy_bytes else view
            else:  # pragma: no cover - spec tables are static
                raise ProtocolError(f"unknown field type {ftype!r}")
        except struct.error as exc:
            raise ProtocolError(f"truncated field {name!r}: {exc}") from None
    return values, pos


# ---------------------------------------------------------------------- #
# frame encoding
# ---------------------------------------------------------------------- #


def encode_request(opcode: int, request_id: int, **fields) -> bytes:
    spec = REQUEST_SPECS.get(opcode)
    if spec is None:
        raise ProtocolError(f"unknown opcode {opcode}")
    body = REQ_HEADER.pack(opcode, request_id) + _pack_fields(spec, fields)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"request frame too large: {len(body)} bytes")
    return LEN_PREFIX.pack(len(body)) + body


def decode_request(payload: bytes, *, copy_bytes: bool = True) -> Request:
    if len(payload) < REQ_HEADER.size:
        raise ProtocolError(f"request frame too short: {len(payload)} bytes")
    opcode, request_id = REQ_HEADER.unpack_from(payload, 0)
    spec = REQUEST_SPECS.get(opcode)
    if spec is None:
        raise ProtocolError(f"unknown opcode {opcode}")
    fields, pos = _unpack_fields(
        spec, memoryview(payload), REQ_HEADER.size, copy_bytes=copy_bytes
    )
    if pos != len(payload):
        raise ProtocolError(
            f"{OP_NAMES[opcode]} request carries {len(payload) - pos} trailing bytes"
        )
    return Request(opcode, request_id, fields)


def encode_reply(opcode: int, request_id: int, **fields) -> bytes:
    spec = REPLY_SPECS.get(opcode)
    if spec is None:
        raise ProtocolError(f"unknown opcode {opcode}")
    body = REP_HEADER.pack(STATUS_OK, request_id) + _pack_fields(spec, fields)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"reply frame too large: {len(body)} bytes")
    return LEN_PREFIX.pack(len(body)) + body


def encode_error(request_id: int, err: int, kind: str, message: str) -> bytes:
    body = REP_HEADER.pack(STATUS_ERROR, request_id) + _pack_fields(
        ERROR_SPEC, {"errno": err, "kind": kind, "message": message}
    )
    return LEN_PREFIX.pack(len(body)) + body


def decode_reply(payload: bytes, opcode: int) -> Reply:
    if len(payload) < REP_HEADER.size:
        raise ProtocolError(f"reply frame too short: {len(payload)} bytes")
    status, request_id = REP_HEADER.unpack_from(payload, 0)
    spec = ERROR_SPEC if status == STATUS_ERROR else REPLY_SPECS.get(opcode)
    if spec is None:
        raise ProtocolError(f"unknown opcode {opcode}")
    fields, pos = _unpack_fields(spec, memoryview(payload), REP_HEADER.size)
    if pos != len(payload):
        raise ProtocolError(
            f"reply carries {len(payload) - pos} trailing bytes"
        )
    return Reply(status, request_id, fields)


def raise_remote(reply: Reply) -> None:
    """Re-raise the error envelope in *reply* as the matching exception.

    Known :mod:`repro.plfs.errors` kinds come back as that exact class (so
    ``except PlfsError`` works identically on both paths); anything else
    surfaces as :class:`RemoteError`, still an ``OSError`` with the
    original errno.
    """
    assert reply.status == STATUS_ERROR
    err = reply.fields["errno"]
    kind = reply.fields["kind"]
    message = reply.fields["message"]
    from repro.plfs import errors as plfs_errors

    cls = getattr(plfs_errors, kind, None)
    if isinstance(cls, type) and issubclass(cls, plfs_errors.PlfsError):
        raise cls(message, err)
    raise RemoteError(err, kind, message)


# ---------------------------------------------------------------------- #
# stream helpers
# ---------------------------------------------------------------------- #


async def read_frame_async(reader) -> bytes | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        # asyncio.IncompleteReadError subclasses EOFError; a peer dying
        # mid-header is treated as disconnect, not protocol violation.
        header = await reader.readexactly(LEN_PREFIX.size)
    except (EOFError, ConnectionError):
        return None
    (length,) = LEN_PREFIX.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    return await reader.readexactly(length)


def read_frame_sync(sock) -> bytes | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, LEN_PREFIX.size)
    if header is None:
        return None
    (length,) = LEN_PREFIX.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return payload


def _recv_exactly(sock, n: int) -> bytes | None:
    """``n`` bytes from *sock*; ``None`` on EOF before the first byte,
    :class:`ProtocolError` on EOF mid-way (a torn frame)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
