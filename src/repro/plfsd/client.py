"""The plfsd client: a synchronous shim speaking the daemon protocol.

:class:`PlfsdClient` is a thread-safe blocking client over one unix-socket
connection.  :class:`RemoteFd` is the daemon-backed counterpart of
:class:`repro.plfs.api.Plfs_fd`: the ``plfs_*`` API functions dispatch on
``is_remote``, so everything above them — the interposition shim, the fd
table, buffered ``builtins.open`` wrappers — works unchanged whether a
handle is in-process or daemon-held.  That is the whole point: unmodified
scripts route through the daemon purely because their mount carries a
``daemon=<socket>`` option.

Fallback semantics: reaching the daemon is an *optimisation*, never a
requirement.  :func:`connect` raises :class:`PlfsdUnavailable` when the
socket is missing or dead, and the interposition layer catches exactly
that to fall back to the ordinary in-process path (counted in shim stats
as ``daemon_fallbacks``).  Container bytes live on a filesystem both
paths can see; coherence between daemon-held and direct handles is the
PR-5 generation-file protocol, not the socket.
"""

from __future__ import annotations

import errno
import os
import socket
import stat as stat_module
import threading
from collections import deque

from . import protocol as proto

_ACCMODE = os.O_RDONLY | os.O_WRONLY | os.O_RDWR

#: Cap one wire write; larger application writes are split client-side
#: (the daemon appends each chunk at the right logical offset, so the
#: split is invisible — same guarantee the shim's short-write resumption
#: gives the direct path).
MAX_WIRE_WRITE = proto.MAX_FRAME - 4096

# Shared-memory data plane geometry (shared with the collective exchange
# plane — see repro.plfsd.shm).  Appends at or above the threshold park
# their payload in a client-owned shm segment of SHM_SLOTS slots and send
# only a descriptor — large writes never cross the socket.  Below the
# threshold the bookkeeping costs more than the wire copy saves.
from .shm import SHM_SLOT_BYTES, SHM_SLOTS, SHM_THRESHOLD, try_create_pool


class PlfsdUnavailable(ConnectionError):
    """No daemon is reachable at the socket — callers should fall back."""


def connect(socket_path: str, *, timeout: float = 5.0, name: str = "") -> "PlfsdClient":
    """Connect and handshake, or raise :class:`PlfsdUnavailable`."""
    try:
        client = PlfsdClient(socket_path, timeout=timeout)
        client.hello(name or f"pid-{os.getpid()}")
    except (OSError, proto.ProtocolError) as exc:
        raise PlfsdUnavailable(
            f"no plfsd reachable at {socket_path!r}: {exc}"
        ) from None
    return client


class PlfsdClient:
    """One connection to a plfsd daemon (thread-safe, strictly ordered)."""

    def __init__(self, socket_path: str, *, timeout: float = 5.0):
        self.socket_path = socket_path
        self._lock = threading.Lock()
        self._next_id = 1
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(socket_path)
        except OSError:
            self._sock.close()
            raise
        # Requests block for their reply; pure I/O waits should not be
        # clipped by the connect timeout.
        self._sock.settimeout(None)
        self.client_id: int | None = None
        self.server_pid: int | None = None
        self._closed = False
        self._shm = None
        self._shm_failed = False

    # ------------------------------------------------------------------ #

    def _request(self, opcode: int, **fields) -> dict:
        with self._lock:
            if self._closed:
                raise PlfsdUnavailable("client connection is closed")
            request_id = self._next_id
            self._next_id += 1
            try:
                self._sock.sendall(
                    proto.encode_request(opcode, request_id, **fields)
                )
                payload = proto.read_frame_sync(self._sock)
            except OSError as exc:
                self.close()
                raise PlfsdUnavailable(f"daemon connection lost: {exc}") from None
            if payload is None:
                self.close()
                raise PlfsdUnavailable("daemon closed the connection")
        reply = proto.decode_reply(payload, opcode)
        if reply.request_id != request_id:
            raise proto.ProtocolError(
                f"reply id {reply.request_id} != request id {request_id}"
            )
        if not reply.ok:
            proto.raise_remote(reply)
        return reply.fields

    # ------------------------------------------------------------------ #
    # shared-memory data plane
    # ------------------------------------------------------------------ #

    @staticmethod
    def _destroy_shm(seg) -> None:
        for fn in (seg.close, seg.unlink):
            try:
                fn()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass

    def _attach_shm_locked(self) -> None:
        """Create the segment and register it with the daemon.

        Must be called with ``self._lock`` held and no requests in flight:
        the exchange speaks on the raw socket because ``_request`` would
        deadlock on the non-reentrant lock.  Failure is never fatal —
        ``_shm_failed`` pins this connection to the wire path.
        """
        if self._shm is not None or self._shm_failed:
            return
        seg = try_create_pool()
        if seg is None:
            self._shm_failed = True
            return
        rid = self._next_id
        self._next_id += 1
        try:
            self._sock.sendall(
                proto.encode_request(
                    proto.OP_ATTACH_SHM, rid, name=seg.name, size=seg.size
                )
            )
            payload = proto.read_frame_sync(self._sock)
        except OSError as exc:
            self._destroy_shm(seg)
            self.close()
            raise PlfsdUnavailable(f"daemon connection lost: {exc}") from None
        if payload is None:
            self._destroy_shm(seg)
            self.close()
            raise PlfsdUnavailable("daemon closed the connection")
        reply = proto.decode_reply(payload, proto.OP_ATTACH_SHM)
        if reply.request_id != rid:
            self._destroy_shm(seg)
            raise proto.ProtocolError(
                f"reply id {reply.request_id} != request id {rid}"
            )
        if not reply.ok:
            # The daemon refused (``--no-shm``, or its attach failed):
            # payloads stay on the wire for the life of this connection.
            self._destroy_shm(seg)
            self._shm_failed = True
            return
        self._shm = seg

    # ------------------------------------------------------------------ #
    # session
    # ------------------------------------------------------------------ #

    def hello(self, name: str = "") -> dict:
        fields = self._request(proto.OP_HELLO, name=name)
        self.client_id = fields["client_id"]
        self.server_pid = fields["server_pid"]
        return fields

    def ping(self) -> int:
        return self._request(proto.OP_PING)["server_pid"]

    def stats(self) -> dict:
        import json

        return json.loads(self._request(proto.OP_STATS)["json"])

    def shutdown_server(self) -> None:
        self._request(proto.OP_SHUTDOWN)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            if self._shm is not None:
                seg, self._shm = self._shm, None
                self._destroy_shm(seg)

    def __enter__(self) -> "PlfsdClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # file operations
    # ------------------------------------------------------------------ #

    def open(self, path: str, flags: int, mode: int = 0o644) -> "RemoteFd":
        fields = self._request(
            proto.OP_OPEN, path=path, flags=flags, mode=mode & 0o7777
        )
        return RemoteFd(self, fields["handle"], path, flags)

    def open_delegated(self, path: str, flags: int, mode: int = 0o644):
        """Metadata through the daemon, data on the direct path.

        PLFS never streams bytes through its metadata service — on the
        paper's Lustre deployment the dedicated MDS orders creates while
        every rank writes its droppings straight to the OSTs.  This is
        that split: the daemon performs the (serialized) container
        create, then the caller gets an ordinary in-process writer whose
        droppings go to the backend at direct-path speed.  Generation
        files keep daemon-held readers coherent with this foreign writer
        exactly as with any other direct-path process.

        Only pure ``O_WRONLY`` handles qualify (readers want the daemon's
        shared index cache; ``O_EXCL`` needs the atomic remote create).
        Returns a local :class:`repro.plfs.api.Plfs_fd`.
        """
        if (flags & _ACCMODE) != os.O_WRONLY or flags & os.O_EXCL:
            raise ValueError(
                "delegated opens are plain write-only (no O_EXCL)"
            )
        from repro.plfs import api as plfs_api

        if flags & os.O_CREAT:
            self.create(path, mode)  # the MDS hop: daemon meta lock
        return plfs_api.plfs_open(
            path, flags & ~os.O_CREAT, os.getpid(), mode & 0o7777
        )

    def create(self, path: str, mode: int = 0o644) -> None:
        self._request(proto.OP_CREATE, path=path, mode=mode & 0o7777)

    def unlink(self, path: str) -> None:
        self._request(proto.OP_UNLINK, path=path)

    def write(self, handle: int, data, offset: int) -> int:
        view = memoryview(data)
        if view.itemsize != 1:
            view = view.cast("B") if view.contiguous else memoryview(view.tobytes())
        return self.write_many(handle, (view,), offset)

    def write_many(
        self, handle: int, chunks, offset: int, *, window: int = 8
    ) -> int:
        """Pipelined contiguous appends: stream *chunks* starting at
        *offset* with up to *window* requests in flight before collecting
        replies.  The server still executes strictly in order per
        connection; pipelining only hides the socket transfer of chunk
        N+1 under the disk write of chunk N.  The window also bounds the
        reply backlog, so the daemon can never block writing replies while
        we block sending requests.  Returns total bytes acknowledged;
        any error reply aborts the stream and re-raises.

        Pieces of at least :data:`SHM_THRESHOLD` bytes travel through the
        shared-memory data plane when the daemon accepts one: the payload
        is copied into a free slot of the client-owned segment and only a
        16-byte descriptor crosses the socket (``OP_WRITE_SHM``).  A slot
        is reusable once its reply arrives — strict per-connection
        ordering guarantees the daemon is done with the pages by then.
        """
        inflight: deque[int] = deque()
        slot_of: dict[int, int] = {}
        remote_errors: list[BaseException] = []
        acked = 0

        def lost(exc) -> PlfsdUnavailable:
            self.close()
            return PlfsdUnavailable(f"daemon connection lost: {exc}")

        def collect_one() -> None:
            # A failed append is remembered, not raised: the replies for
            # requests already in flight must still be drained, or the
            # connection would desync for every later request.
            nonlocal acked
            rid = inflight.popleft()
            try:
                payload = proto.read_frame_sync(self._sock)
            except OSError as exc:
                raise lost(exc) from None
            if payload is None:
                self.close()
                raise PlfsdUnavailable("daemon closed the connection")
            # OP_WRITE and OP_WRITE_SHM share one reply shape (written u64),
            # so a single decode covers both.
            reply = proto.decode_reply(payload, proto.OP_WRITE)
            if reply.request_id != rid:
                raise proto.ProtocolError(
                    f"reply id {reply.request_id} != request id {rid}"
                )
            slot = slot_of.pop(rid, None)
            if slot is not None:
                self._shm.release(slot)
            if not reply.ok:
                try:
                    proto.raise_remote(reply)
                except OSError as exc:
                    remote_errors.append(exc)
                return
            acked += reply.fields["written"]

        with self._lock:
            if self._closed:
                raise PlfsdUnavailable("client connection is closed")
            sent = 0
            for chunk in chunks:
                if remote_errors:
                    break  # stop streaming; drain what's in flight below
                view = memoryview(chunk)
                if view.itemsize != 1:
                    view = view.cast("B")
                start = 0
                while True:
                    take = min(len(view) - start, MAX_WIRE_WRITE)
                    use_shm = False
                    if take >= SHM_THRESHOLD and not self._shm_failed:
                        if self._shm is None:
                            # Attach speaks on the raw socket; the pipeline
                            # must be empty or replies would interleave.
                            while inflight:
                                collect_one()
                            self._attach_shm_locked()
                        if self._shm is not None:
                            while not self._shm.available and inflight:
                                collect_one()
                            if self._shm.available:
                                use_shm = True
                                take = min(take, self._shm.slot_bytes)
                    piece = view[start : start + take]
                    rid = self._next_id
                    self._next_id += 1
                    if use_shm:
                        slot, base, _staged = self._shm.stage(piece)
                        frame = proto.encode_request(
                            proto.OP_WRITE_SHM,
                            rid,
                            handle=handle,
                            offset=offset + sent,
                            shm_off=base,
                            count=take,
                        )
                        slot_of[rid] = slot
                    else:
                        frame = proto.encode_request(
                            proto.OP_WRITE,
                            rid,
                            handle=handle,
                            offset=offset + sent,
                            data=bytes(piece),
                        )
                    try:
                        self._sock.sendall(frame)
                    except OSError as exc:
                        raise lost(exc) from None
                    inflight.append(rid)
                    sent += take
                    start += take
                    while len(inflight) >= window:
                        collect_one()
                    if start >= len(view):
                        break
            while inflight:
                collect_one()
        if remote_errors:
            raise remote_errors[0]
        return acked

    def read(self, handle: int, count: int, offset: int) -> bytes:
        return self._request(
            proto.OP_READ, handle=handle, offset=offset, count=count
        )["data"]

    def sync(self, handle: int) -> None:
        self._request(proto.OP_SYNC, handle=handle)

    def getattr(self, handle: int) -> dict:
        return self._request(proto.OP_GETATTR, handle=handle)

    def trunc(self, handle: int, offset: int) -> None:
        self._request(proto.OP_TRUNC, handle=handle, offset=offset)

    def close_handle(self, handle: int) -> int:
        return self._request(proto.OP_CLOSE, handle=handle)["refs"]


class RemoteFd:
    """Daemon-held counterpart of :class:`~repro.plfs.api.Plfs_fd`.

    Reference counted like the local handle (LDPLFS layers may share one
    handle across descriptors); the final close releases the daemon slot.
    The ``plfs_*`` functions in :mod:`repro.plfs.api` detect ``is_remote``
    and delegate here, so the shim and fd table never branch.
    """

    is_remote = True

    def __init__(self, client: PlfsdClient, handle: int, path: str, flags: int):
        self.client = client
        self.handle = handle
        self.path = path
        self.flags = flags
        self.refs = 1
        self.pid = os.getpid()

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCMODE) in (os.O_RDONLY, os.O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCMODE) in (os.O_WRONLY, os.O_RDWR)

    # --- the surface plfs.api dispatches to --------------------------- #

    def write(self, buf, count: int | None = None, offset: int = 0) -> int:
        if not self.writable:
            raise OSError(errno.EBADF, "handle not open for writing")
        view = memoryview(bytes(buf)) if isinstance(buf, str) else memoryview(buf)
        if count is not None:
            view = view[:count]
        return self.client.write(self.handle, view, offset)

    def writev(self, buffers, offset: int = 0) -> int:
        # The buffers cover one contiguous span: one wire frame carries
        # them joined (the daemon's vectored index merge still applies —
        # a single contiguous append produces one merged record).
        joined = b"".join(bytes(b) for b in buffers)
        if not joined:
            return 0
        return self.write(joined, None, offset)

    def read(self, count: int, offset: int) -> bytes:
        if not self.readable:
            raise OSError(errno.EBADF, "handle not open for reading")
        return self.client.read(self.handle, count, offset)

    def read_into(self, buf, offset: int) -> int:
        view = memoryview(buf)
        data = self.read(len(view), offset)
        view[: len(data)] = data
        return len(data)

    def sync(self) -> None:
        self.client.sync(self.handle)

    def getattr(self) -> os.stat_result:
        fields = self.client.getattr(self.handle)
        mtime = fields["mtime_ns"] // 1_000_000_000
        return os.stat_result(
            (
                fields["mode"] or (stat_module.S_IFREG | 0o644),
                0,
                0,
                1,
                os.getuid() if hasattr(os, "getuid") else 0,
                os.getgid() if hasattr(os, "getgid") else 0,
                fields["size"],
                mtime,
                mtime,
                mtime,
            )
        )

    def trunc(self, offset: int = 0) -> None:
        self.client.trunc(self.handle, offset)

    def close(self) -> int:
        self.refs -= 1
        if self.refs > 0:
            return self.refs
        if self.refs < 0:  # idempotent double close, like the local path
            self.refs = 0
            return 0
        self.client.close_handle(self.handle)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteFd handle={self.handle} path={self.path!r}>"
