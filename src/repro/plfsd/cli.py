"""``repro-plfsd`` — run the PLFS container daemon from the shell.

Usage::

    repro-plfsd --socket /run/plfsd.sock [options]

Clients route through the daemon by adding ``?daemon=/run/plfsd.sock`` to
a mount's backend spec (``LDPLFS_MOUNTS=/mnt/plfs:/backend?daemon=...``).
The daemon exits on ``SIGINT``/``SIGTERM`` or a ``shutdown`` request over
the wire, closing every open handle first (indexes reach disk).

Fault injection: exporting ``REPRO_FAULTS`` (and optionally
``REPRO_FAULT_SEED``) before launch arms an injector inside the daemon,
exactly as it would in any other subprocess of the fault harness.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.plfs import api as plfs_api

from . import server as plfsd_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plfsd",
        description="PLFS as a service: async multi-writer container daemon",
    )
    parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="unix socket to listen on (created, replaced if stale)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=plfsd_server.DEFAULT_IDLE_TIMEOUT,
        metavar="SECONDS",
        help="reap a handle's cached read fds after this idle time "
        f"(default {plfsd_server.DEFAULT_IDLE_TIMEOUT:g})",
    )
    parser.add_argument(
        "--reap-interval",
        type=float,
        default=plfsd_server.DEFAULT_REAP_INTERVAL,
        metavar="SECONDS",
        help="how often the idle-handle reaper sweeps "
        f"(default {plfsd_server.DEFAULT_REAP_INTERVAL:g})",
    )
    parser.add_argument(
        "--write-ahead-index",
        action="store_true",
        help="open writers with the write-ahead index dropping enabled",
    )
    parser.add_argument(
        "--wal-batch-records",
        type=int,
        default=1,
        metavar="N",
        help="group-commit window for the write-ahead index (default 1)",
    )
    parser.add_argument(
        "--no-compact-on-close",
        action="store_true",
        help="skip writing the compacted global.index on last clean close",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="refuse the shared-memory data plane (clients fall back to "
        "sending append payloads over the socket)",
    )
    return parser


async def _run(args: argparse.Namespace) -> None:
    options = plfs_api.OpenOptions(
        write_ahead_index=args.write_ahead_index,
        wal_batch_records=args.wal_batch_records,
        compact_on_close=not args.no_compact_on_close,
    )
    serve_task = asyncio.ensure_future(
        plfsd_server.serve(
            args.socket,
            open_options=options,
            idle_timeout=args.idle_timeout,
            reap_interval=args.reap_interval,
            allow_shm=not args.no_shm,
        )
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, serve_task.cancel)
    with contextlib.suppress(asyncio.CancelledError):
        await serve_task


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
