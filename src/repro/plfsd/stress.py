"""Create-storm and multi-tenant stress harness for the plfsd daemon.

The paper's §V.C result: on a Lustre deployment with a *dedicated*
metadata server, a 3,072-core FLASH-IO create storm melts down — every
rank's dropping creation serializes on the one MDS and PLFS flips from
accelerator to bottleneck.  The daemon reproduces that topology honestly:
all metadata operations queue on one global lock, so driving N client
processes into simultaneous creates makes per-client queue wait grow with
N — the meltdown curve, measured with real containers and real bytes.

Pieces:

- :func:`start_daemon` / :func:`stop_daemon` — subprocess lifecycle with
  ping-until-ready;
- a ``--worker`` mode (``python -m repro.plfsd.stress --worker ...``) that
  runs one client's workload and prints a JSON result line;
- :func:`run_create_storm` / :func:`run_append_workload` — fan out worker
  processes, gather their timings plus the server's own accounting.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from . import client as plfsd_client


# ---------------------------------------------------------------------- #
# daemon lifecycle
# ---------------------------------------------------------------------- #


def wait_ready(socket_path: str, timeout: float = 10.0) -> None:
    """Block until a daemon answers a ping at *socket_path*."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            with plfsd_client.PlfsdClient(socket_path, timeout=1.0) as probe:
                probe.ping()
            return
        except (OSError, plfsd_client.PlfsdUnavailable):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no daemon answering at {socket_path!r} after {timeout:g}s"
                ) from None
            time.sleep(0.02)


def start_daemon(
    socket_path: str,
    *,
    timeout: float = 10.0,
    env: dict[str, str] | None = None,
    extra_args: list[str] | None = None,
) -> subprocess.Popen:
    """Launch ``repro-plfsd`` as a subprocess and wait until it serves."""
    cmd = [
        sys.executable,
        "-m",
        "repro.plfsd.cli",
        "--socket",
        socket_path,
        *(extra_args or []),
    ]
    proc = subprocess.Popen(cmd, env=env if env is not None else os.environ.copy())
    try:
        wait_ready(socket_path, timeout)
    except Exception:
        proc.terminate()
        proc.wait(timeout=5)
        raise
    return proc


def stop_daemon(proc: subprocess.Popen, socket_path: str, timeout: float = 10.0) -> None:
    """Ask the daemon to shut down over the wire; escalate if it lingers."""
    try:
        with plfsd_client.PlfsdClient(socket_path, timeout=2.0) as ctl:
            ctl.shutdown_server()
    except (OSError, plfsd_client.PlfsdUnavailable):
        pass
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover - hung daemon
        proc.terminate()
        proc.wait(timeout=5)


def daemon_stats(socket_path: str) -> dict:
    with plfsd_client.connect(socket_path, name="stats-probe") as ctl:
        return ctl.stats()


# ---------------------------------------------------------------------- #
# worker payloads (run in their own processes)
# ---------------------------------------------------------------------- #


def _await_peers(
    client: plfsd_client.PlfsdClient,
    prefix: str,
    expect: int,
    timeout: float = 30.0,
) -> None:
    """Start-line barrier: block until *expect* clients whose names carry
    *prefix* are connected.  Worker processes pay interpreter startup at
    wildly skewed times (on a one-core box, serially!); without a barrier
    the first worker's timed region absorbs the others' startup and the
    aggregate measures the scheduler, not the daemon."""
    if expect <= 1:
        return
    deadline = time.monotonic() + timeout
    while True:
        present = sum(
            1
            for c in client.stats()["per_client"]
            if c["name"].startswith(prefix)
        )
        if present >= expect:
            return
        if time.monotonic() >= deadline:  # pragma: no cover - hung peers
            raise TimeoutError(
                f"only {present}/{expect} {prefix}* clients arrived"
            )
        time.sleep(0.005)


def _worker_create_storm(args) -> dict:
    """One client of the storm: create+close *count* fresh logical files
    as fast as possible, timing every open round-trip."""
    client = plfsd_client.connect(args.socket, name=f"storm-{args.client_id}")
    latencies: list[float] = []
    _await_peers(client, "storm-", args.expect)
    t0 = time.monotonic()
    with client:
        for i in range(args.count):
            path = os.path.join(args.dir, f"storm.{args.client_id}.{i}")
            t1 = time.monotonic()
            fd = client.open(path, os.O_CREAT | os.O_WRONLY, 0o644)
            latencies.append(time.monotonic() - t1)
            fd.close()
    elapsed = time.monotonic() - t0
    latencies.sort()
    return {
        "client_id": args.client_id,
        "creates": args.count,
        "elapsed_seconds": elapsed,
        "mean_create_seconds": sum(latencies) / max(1, len(latencies)),
        "p99_create_seconds": latencies[int(0.99 * (len(latencies) - 1))]
        if latencies
        else 0.0,
    }


def _worker_append(args) -> dict:
    """One tenant: stream *count* chunks of *size* bytes into its own
    logical file through the daemon's remote data plane (shared memory
    when the daemon accepts a segment, the wire otherwise)."""
    client = plfsd_client.connect(args.socket, name=f"tenant-{args.client_id}")
    chunk = bytes((args.client_id + j) % 256 for j in range(args.size))
    with client:
        _await_peers(client, "tenant-", args.expect)
        t0 = time.monotonic()
        path = os.path.join(args.dir, f"tenant.{args.client_id}")
        fd = client.open(path, os.O_CREAT | os.O_WRONLY, 0o644)
        # Pipelined stream: chunk N+1 crosses to the daemon while it is
        # still writing chunk N to its dropping.  No fsync inside the
        # timed region — its cost is identical on the direct path, and
        # disk-flush noise would swamp the daemon overhead being measured.
        client.write_many(fd.handle, (chunk for _ in range(args.count)), 0)
        fd.close()
        elapsed = time.monotonic() - t0
    total = args.count * args.size
    return {
        "client_id": args.client_id,
        "bytes": total,
        "elapsed_seconds": elapsed,
        "mib_per_second": (total / (1024 * 1024)) / elapsed if elapsed else 0.0,
    }


def _worker_append_delegated(args) -> dict:
    """One tenant on the delegated data plane: the daemon serializes the
    metadata create (its MDS role) and the droppings stream from this
    process straight to the backend — the paper's data/metadata split."""
    from repro.plfs import api as plfs_api

    client = plfsd_client.connect(args.socket, name=f"tenant-{args.client_id}")
    chunk = bytes((args.client_id + j) % 256 for j in range(args.size))
    with client:
        _await_peers(client, "tenant-", args.expect)
        t0 = time.monotonic()
        path = os.path.join(args.dir, f"tenant.{args.client_id}")
        fd = client.open_delegated(path, os.O_CREAT | os.O_WRONLY, 0o644)
        for j in range(args.count):
            plfs_api.plfs_write(fd, chunk, args.size, j * args.size)
        plfs_api.plfs_close(fd)
        elapsed = time.monotonic() - t0
    total = args.count * args.size
    return {
        "client_id": args.client_id,
        "bytes": total,
        "elapsed_seconds": elapsed,
        "mib_per_second": (total / (1024 * 1024)) / elapsed if elapsed else 0.0,
    }


def _worker_append_direct(args) -> dict:
    """The yardstick: a plain direct-path writer touching no daemon at
    all.  Run through the same worker machinery so it meets identical
    interpreter and scheduling conditions as the daemon tenants."""
    from repro.plfs import api as plfs_api

    chunk = bytes((args.client_id + j) % 256 for j in range(args.size))
    t0 = time.monotonic()
    path = os.path.join(args.dir, f"direct.{args.client_id}")
    fd = plfs_api.plfs_open(path, os.O_CREAT | os.O_WRONLY)
    for j in range(args.count):
        plfs_api.plfs_write(fd, chunk, args.size, j * args.size)
    plfs_api.plfs_close(fd)
    elapsed = time.monotonic() - t0
    total = args.count * args.size
    return {
        "client_id": args.client_id,
        "bytes": total,
        "elapsed_seconds": elapsed,
        "mib_per_second": (total / (1024 * 1024)) / elapsed if elapsed else 0.0,
    }


_WORKERS = {
    "create-storm": _worker_create_storm,
    "append": _worker_append,
    "append-delegated": _worker_append_delegated,
    "append-direct": _worker_append_direct,
}


# ---------------------------------------------------------------------- #
# fan-out drivers (run in the coordinating process)
# ---------------------------------------------------------------------- #


def _spawn_workers(
    workload: str,
    socket_path: str,
    backend_dir: str,
    clients: int,
    count: int,
    size: int = 0,
) -> list[dict]:
    procs = []
    for client_id in range(clients):
        cmd = [
            sys.executable,
            "-m",
            "repro.plfsd.stress",
            "--worker",
            workload,
            "--socket",
            socket_path,
            "--dir",
            backend_dir,
            "--client-id",
            str(client_id),
            "--count",
            str(count),
            "--size",
            str(size),
            "--expect",
            str(clients),
        ]
        procs.append(
            subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
        )
    results = []
    failures = []
    for proc in procs:
        out, _ = proc.communicate(timeout=600)
        if proc.returncode != 0:
            failures.append(proc.returncode)
            continue
        results.append(json.loads(out.strip().splitlines()[-1]))
    if failures:
        raise RuntimeError(f"{len(failures)} stress workers failed: {failures}")
    return results


def run_create_storm(
    socket_path: str, backend_dir: str, clients: int, creates_per_client: int
) -> dict:
    """N processes hammering creates at once; returns client timings plus
    the server's queue-wait accounting (the meltdown signal)."""
    t0 = time.monotonic()
    workers = _spawn_workers(
        "create-storm", socket_path, backend_dir, clients, creates_per_client
    )
    elapsed = time.monotonic() - t0
    stats = daemon_stats(socket_path)
    agg = stats["aggregate"]
    total_creates = clients * creates_per_client
    return {
        "clients": clients,
        "creates_per_client": creates_per_client,
        "elapsed_seconds": elapsed,
        "creates_per_second": total_creates / elapsed if elapsed else 0.0,
        "mean_create_seconds": sum(w["mean_create_seconds"] for w in workers)
        / clients,
        "p99_create_seconds": max(w["p99_create_seconds"] for w in workers),
        "queue_wait_per_create_seconds": agg["queue_wait_seconds"]
        / max(1, agg["creates"]),
        "max_queue_wait_seconds": agg["max_queue_wait_seconds"],
        "workers": workers,
        "server": stats,
    }


def run_append_workload(
    socket_path: str,
    backend_dir: str,
    clients: int,
    appends_per_client: int,
    chunk_bytes: int,
    *,
    delegated: bool = False,
) -> dict:
    """N tenants streaming appends concurrently; returns the aggregate
    throughput across all of them.  ``delegated=True`` uses the delegated
    data plane (daemon does metadata, droppings written in-process);
    otherwise payloads travel to the daemon over shm or the wire.  The
    aggregate is total bytes over the *slowest worker's own elapsed
    time*: workers rendezvous on a start barrier and time only their I/O
    region, so interpreter startup of the worker processes (which dwarfs
    a smoke-scale workload) never counts as transfer time."""
    t0 = time.monotonic()
    workers = _spawn_workers(
        "append-delegated" if delegated else "append",
        socket_path,
        backend_dir,
        clients,
        appends_per_client,
        chunk_bytes,
    )
    wall = time.monotonic() - t0
    stats = daemon_stats(socket_path)
    total = clients * appends_per_client * chunk_bytes
    elapsed = max(w["elapsed_seconds"] for w in workers)
    return {
        "clients": clients,
        "data_plane": "delegated" if delegated else "remote",
        "server": stats,
        "appends_per_client": appends_per_client,
        "chunk_bytes": chunk_bytes,
        "total_bytes": total,
        "elapsed_seconds": elapsed,
        "wall_seconds": wall,
        "aggregate_mib_per_second": (total / (1024 * 1024)) / elapsed
        if elapsed
        else 0.0,
        "workers": workers,
    }


def run_direct_baseline(
    backend_dir: str, appends: int, chunk_bytes: int
) -> dict:
    """Single-process direct-path writer (no daemon), timed in a worker
    subprocess under the same conditions as the daemon tenants."""
    worker = _spawn_workers(
        "append-direct", "-", backend_dir, 1, appends, chunk_bytes
    )[0]
    return {
        "total_bytes": worker["bytes"],
        "elapsed_seconds": worker["elapsed_seconds"],
        "mib_per_second": worker["mib_per_second"],
    }


# ---------------------------------------------------------------------- #
# worker entry point
# ---------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.plfsd.stress")
    parser.add_argument("--worker", required=True, choices=sorted(_WORKERS))
    parser.add_argument("--socket", required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--client-id", type=int, required=True)
    parser.add_argument("--count", type=int, required=True)
    parser.add_argument("--size", type=int, default=0)
    parser.add_argument("--expect", type=int, default=1)
    args = parser.parse_args(argv)
    result = _WORKERS[args.worker](args)
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
