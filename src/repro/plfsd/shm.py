"""Slotted shared-memory segments: the plfsd data plane's geometry,
factored out so other planes can reuse it.

Two consumers share this pool shape:

- the plfsd client's append plane (``client.py``): payloads at or above
  :data:`SHM_THRESHOLD` park in a slot and only a 16-byte descriptor
  crosses the socket;
- the collective exchange plane (``repro.collective.exchange``): member
  ranks stage large phase-1 contributions in slots so aggregator workers
  read them without a second copy.

A :class:`SegmentPool` is one shared-memory segment carved into
fixed-size slots with a free list.  Slot recycling is the caller's
ordering contract: a slot may be released only once the consumer is
provably done with its pages (for plfsd, when the strictly-ordered reply
arrives; for the exchange, at the phase barrier).

Shared memory is an optimisation, never a requirement — creation failure
(no ``/dev/shm``, no ``multiprocessing.shared_memory``) must degrade to
the plain copy path, which is why :func:`try_create_pool` returns
``None`` instead of raising.
"""

from __future__ import annotations

from collections import deque

#: one slot: large enough for a cb_buffer_size-chunked piece
SHM_SLOT_BYTES = 1 << 20
#: slots per segment (bounds in-flight staged payloads)
SHM_SLOTS = 16
#: below this the bookkeeping costs more than the copy it saves
SHM_THRESHOLD = 256 * 1024


class SegmentPool:
    """One shared-memory segment carved into recyclable fixed-size slots."""

    def __init__(self, *, slot_bytes: int = SHM_SLOT_BYTES, slots: int = SHM_SLOTS):
        from multiprocessing import shared_memory

        self.slot_bytes = slot_bytes
        self.slots = slots
        self._seg = shared_memory.SharedMemory(create=True, size=slot_bytes * slots)
        self._free: deque[int] = deque(range(slots))

    # -- identity (what crosses the wire to the attaching peer) --------- #

    @property
    def name(self) -> str:
        return self._seg.name

    @property
    def size(self) -> int:
        return self._seg.size

    @property
    def buf(self) -> memoryview:
        return self._seg.buf

    # -- slot lifecycle ------------------------------------------------- #

    @property
    def available(self) -> bool:
        return bool(self._free)

    def acquire(self) -> int:
        """Take a free slot index (caller must have checked *available*)."""
        return self._free.popleft()

    def release(self, slot: int) -> None:
        self._free.append(slot)

    def stage(self, view) -> tuple[int, int, int]:
        """Copy up to one slot's worth of *view* into a free slot.

        Returns ``(slot, base, taken)``: the slot index, its byte offset
        inside the segment, and how many bytes were staged.
        """
        slot = self.acquire()
        base = slot * self.slot_bytes
        take = min(len(view), self.slot_bytes)
        self._seg.buf[base : base + take] = view[:take]
        return slot, base, take

    def view(self, base: int, count: int) -> memoryview:
        """Zero-copy window over staged bytes (valid until release)."""
        return self._seg.buf[base : base + count]

    # -- teardown (close/unlink split so client._destroy_shm works) ----- #

    def close(self) -> None:
        self._seg.close()

    def unlink(self) -> None:
        self._seg.unlink()

    def destroy(self) -> None:
        for fn in (self.close, self.unlink):
            try:
                fn()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass


def try_create_pool(
    *, slot_bytes: int = SHM_SLOT_BYTES, slots: int = SHM_SLOTS
) -> SegmentPool | None:
    """A :class:`SegmentPool`, or ``None`` where shared memory is
    unavailable — callers degrade to their copy path."""
    try:
        return SegmentPool(slot_bytes=slot_bytes, slots=slots)
    except (ImportError, OSError):
        return None
