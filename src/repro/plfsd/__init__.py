"""``repro.plfsd`` — PLFS as a service: the async multi-writer container daemon.

The paper's scaling failure (§V.C) is metadata: when thousands of clients
create dropping files at once, Lustre's *dedicated* metadata server
serializes the storm and PLFS turns from accelerator into bottleneck.
Until now that meltdown only existed in ``repro.sim``; the real container
path (``repro.plfs``) was strictly per-process.  This package promotes the
container store to a shared service so the phenomenon — and its eventual
fixes — can be reproduced with real bytes:

- :mod:`repro.plfsd.protocol` — the length-prefixed binary wire protocol
  (request framing, typed error envelope);
- :mod:`repro.plfsd.server` — the asyncio daemon: many client processes,
  thousands of handles, per-container writer serialization, shared read
  cache, per-client accounting;
- :mod:`repro.plfsd.client` — the synchronous client shim and the
  :class:`~repro.plfsd.client.RemoteFd` handle that plugs into
  ``repro.core`` behind a ``daemon=`` mount option;
- :mod:`repro.plfsd.stress` — the create-storm / multi-tenant stress
  harness reproducing the dedicated-MDS meltdown in the real path;
- :mod:`repro.plfsd.cli` — the ``repro-plfsd`` console entry point.
"""

from .client import PlfsdClient, PlfsdUnavailable, RemoteFd
from .protocol import ProtocolError, RemoteError
from .server import PlfsdServer

__all__ = [
    "PlfsdClient",
    "PlfsdServer",
    "PlfsdUnavailable",
    "ProtocolError",
    "RemoteError",
    "RemoteFd",
]
