"""The plfsd server: one daemon owning containers for many client processes.

Concurrency model ("serialize writers, share read cache"):

- Every connection is an asyncio task; requests *within* one connection
  are processed strictly in order (a handle belongs to one connection, so
  no handle ever races with itself).
- **Metadata operations** — container create, open, unlink, trunc — are
  serialized through one global metadata lock.  This is deliberate
  modelling, not an accident: the daemon *is* the dedicated metadata
  service of the paper's §V.C Lustre deployment, and the create-storm
  meltdown reproduces exactly here, with real bytes, as queue-wait on
  this lock (see :mod:`repro.plfsd.stress`).
- **Writer state** is serialized per container: appends to one logical
  file queue on that container's lock (each client handle still gets its
  own dropping stream — PLFS's per-writer partitioning is preserved — but
  index visibility and generation bumps are ordered).
- **Reads** take no daemon lock at all: they ride the process-wide shared
  index cache (:mod:`repro.plfs.cache`), which is internally locked and
  epoch-validated, so thousands of read handles share one global index
  per container.

Blocking PLFS calls run in the event loop's thread pool so a slow disk
operation on one container never stalls requests for another.

Every lock acquisition is accounted as *queue wait* per client; the
:meth:`PlfsdServer.stats` snapshot (opens, appends, bytes, queue-wait,
reaped fds) is the wire ``stats`` reply and feeds
:func:`repro.insights.metrics.attach_daemon_evidence`.

Direct-path coherence: daemon writers flush through the ordinary write
path, which bumps the per-container generation file (PR 5), so a reader
in *any* process — through the daemon or not — revalidates its cached
index with one ``stat``.

Fault injection propagates into the daemon like into any subprocess:
:func:`serve` arms an injector from ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``
when present, so fault-matrix tests can torture the daemon's persistence
boundaries without patching it.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import json
import os
import time

from repro.plfs import api as plfs_api

from . import protocol as proto

#: Close a daemon-held read handle's cached data-dropping descriptors
#: after this many seconds without a read (long-lived clients must not
#: pin one fd per dropping forever — see ReadFile.reap_idle_fds).
DEFAULT_IDLE_TIMEOUT = 30.0

#: How often the reaper task sweeps idle handles.
DEFAULT_REAP_INTERVAL = 5.0


class _ClientStats:
    """Per-client accounting: the sensor substrate for online tuning."""

    __slots__ = (
        "name",
        "opens",
        "creates",
        "closes",
        "appends",
        "reads",
        "bytes_written",
        "bytes_read",
        "queue_wait_seconds",
        "max_queue_wait_seconds",
        "errors",
    )

    def __init__(self, name: str):
        self.name = name
        self.opens = 0
        self.creates = 0
        self.closes = 0
        self.appends = 0
        self.reads = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.queue_wait_seconds = 0.0
        self.max_queue_wait_seconds = 0.0
        self.errors = 0

    def waited(self, seconds: float) -> None:
        self.queue_wait_seconds += seconds
        if seconds > self.max_queue_wait_seconds:
            self.max_queue_wait_seconds = seconds

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "opens": self.opens,
            "creates": self.creates,
            "closes": self.closes,
            "appends": self.appends,
            "reads": self.reads,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "queue_wait_seconds": self.queue_wait_seconds,
            "max_queue_wait_seconds": self.max_queue_wait_seconds,
            "errors": self.errors,
        }


class _Handle:
    """One daemon-side open handle (owned by exactly one connection)."""

    __slots__ = ("id", "plfs_fd", "path", "client", "last_used")

    def __init__(self, handle_id: int, plfs_fd, path: str, client: _ClientStats):
        self.id = handle_id
        self.plfs_fd = plfs_fd
        self.path = path
        self.client = client
        self.last_used = time.monotonic()

    def touch(self) -> None:
        self.last_used = time.monotonic()


class PlfsdServer:
    """The asyncio container daemon behind one unix socket."""

    #: plfs-san registration (see repro.sanitize).  All three tables are
    #: event-loop-confined (mutated only between awaits on the loop
    #: thread), not lock-guarded — the detector verifies exactly that
    _SANITIZE_SHARED = {"_handles": None, "_clients": None, "_writer_locks": None}
    #: locks to wrap even though no registered field names them as guard
    _SANITIZE_LOCKS = ("_meta_lock",)

    def __init__(
        self,
        socket_path: str,
        *,
        open_options: plfs_api.OpenOptions | None = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        reap_interval: float = DEFAULT_REAP_INTERVAL,
        allow_shm: bool = True,
    ):
        self.socket_path = socket_path
        self.open_options = open_options
        self.idle_timeout = idle_timeout
        self.reap_interval = reap_interval
        self.allow_shm = allow_shm
        self._handles: dict[int, _Handle] = {}
        self._next_handle = 1
        self._next_client = 1
        self._clients: dict[int, _ClientStats] = {}
        #: the "dedicated MDS": every metadata operation queues here
        self._meta_lock = asyncio.Lock()
        #: per-container writer serialization
        self._writer_locks: dict[str, asyncio.Lock] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set = set()
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._started = time.monotonic()
        self.totals = {
            "connections": 0,
            "requests": 0,
            "fds_reaped": 0,
            "handles_reclaimed_after_error": 0,
            "shm_attaches": 0,
            "shm_appends": 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        # The default StreamReader limit is 64 KiB; a full-size write frame
        # would then cross the event loop dozens of times.  Size the buffer
        # to hold one maximal frame so large appends arrive in one pass.
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=proto.MAX_FRAME + 4096,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        reaper = asyncio.ensure_future(self._reaper_loop())
        try:
            await self._shutdown.wait()
        finally:
            reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reaper
            self._server.close()
            await self._server.wait_closed()
            # Close connections by shutting their sockets (each task then
            # sees EOF and unwinds normally) rather than cancelling tasks
            # mid-request.
            for conn_writer in list(self._conn_writers):
                conn_writer.close()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            await self._close_all_handles()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def _close_all_handles(self) -> None:
        """Release every open handle.  ``plfs_close`` is idempotent and
        exception-safe, so one writer failing mid-close can never strand
        the remaining slots."""
        loop = asyncio.get_running_loop()
        for handle in list(self._handles.values()):
            self._handles.pop(handle.id, None)
            try:
                await loop.run_in_executor(None, plfs_api.plfs_close, handle.plfs_fd)
            except OSError:
                self.totals["handles_reclaimed_after_error"] += 1

    # ------------------------------------------------------------------ #
    # the idle-handle reaper
    # ------------------------------------------------------------------ #

    async def _reaper_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            self.totals["fds_reaped"] += self.reap_idle_fds()

    def reap_idle_fds(self, idle_timeout: float | None = None) -> int:
        """Close cached data-dropping descriptors of handles idle longer
        than the timeout.  Returns the number of descriptors closed.  The
        handles stay open — a later read transparently reopens what it
        needs — so this only sheds kernel fds, never state."""
        timeout = self.idle_timeout if idle_timeout is None else idle_timeout
        now = time.monotonic()
        reaped = 0
        for handle in list(self._handles.values()):
            if now - handle.last_used < timeout:
                continue
            reader = handle.plfs_fd._reader
            if reader is not None:
                reaped += reader.reap_idle_fds(0.0)
        return reaped

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        clients = [c.as_dict() for c in self._clients.values()]
        agg = {
            "opens": sum(c.opens for c in self._clients.values()),
            "creates": sum(c.creates for c in self._clients.values()),
            "closes": sum(c.closes for c in self._clients.values()),
            "appends": sum(c.appends for c in self._clients.values()),
            "reads": sum(c.reads for c in self._clients.values()),
            "bytes_written": sum(c.bytes_written for c in self._clients.values()),
            "bytes_read": sum(c.bytes_read for c in self._clients.values()),
            "queue_wait_seconds": sum(
                c.queue_wait_seconds for c in self._clients.values()
            ),
            "max_queue_wait_seconds": max(
                (c.max_queue_wait_seconds for c in self._clients.values()),
                default=0.0,
            ),
            "errors": sum(c.errors for c in self._clients.values()),
        }
        return {
            "server_pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started,
            "open_handles": len(self._handles),
            "clients": len(self._clients),
            "totals": dict(self.totals),
            "aggregate": agg,
            "per_client": clients,
        }

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    def _writer_lock(self, path: str) -> asyncio.Lock:
        lock = self._writer_locks.get(path)
        if lock is None:
            lock = self._writer_locks[path] = asyncio.Lock()
        return lock

    @contextlib.asynccontextmanager
    async def _locked(self, lock: asyncio.Lock, client: _ClientStats):
        """Hold *lock*, accounting the acquisition wait as queue time."""
        t0 = time.monotonic()
        async with lock:
            client.waited(time.monotonic() - t0)
            yield

    async def _handle_connection(self, reader, writer) -> None:
        self.totals["connections"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        client_id = self._next_client
        self._next_client += 1
        client = self._clients.setdefault(
            client_id, _ClientStats(f"client-{client_id}")
        )
        owned: set[int] = set()
        #: connection-local shared-memory data plane (client-owned segment)
        conn_shm: dict = {"seg": None}
        loop = asyncio.get_running_loop()
        try:
            while True:
                payload = await proto.read_frame_async(reader)
                if payload is None:
                    break
                try:
                    # copy_bytes=False: write payloads stay memoryviews over
                    # the frame, feeding the writer's zero-copy append.
                    request = proto.decode_request(payload, copy_bytes=False)
                except proto.ProtocolError:
                    break  # a garbled peer gets disconnected, not served
                self.totals["requests"] += 1
                try:
                    reply = await self._dispatch(
                        loop, request, client, client_id, owned, conn_shm
                    )
                except BaseException as exc:
                    client.errors += 1
                    reply = proto.encode_error(
                        request.request_id,
                        getattr(exc, "errno", None) or errno.EIO,
                        type(exc).__name__,
                        str(exc.args[1] if len(exc.args) > 1 else exc),
                    )
                    # An injected crash is a process kill in the direct
                    # path; in the daemon it kills the *request*, and the
                    # envelope carries it back to the client.
                writer.write(reply)
                await writer.drain()
        except (ConnectionError, proto.ProtocolError):
            pass
        finally:
            # A dying client must not strand handle slots: close whatever
            # it still owned (idempotent, exception-safe).
            for handle_id in list(owned):
                handle = self._handles.pop(handle_id, None)
                if handle is None:
                    continue
                try:
                    await loop.run_in_executor(
                        None, plfs_api.plfs_close, handle.plfs_fd
                    )
                except OSError:
                    self.totals["handles_reclaimed_after_error"] += 1
            if conn_shm["seg"] is not None:
                # Close only our mapping — the segment is client property.
                with contextlib.suppress(BufferError, OSError):
                    conn_shm["seg"].close()
                conn_shm["seg"] = None
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self, loop, request, client, client_id, owned, conn_shm
    ) -> bytes:
        op = request.opcode
        f = request.fields
        rid = request.request_id

        if op == proto.OP_PING:
            return proto.encode_reply(op, rid, server_pid=os.getpid())

        if op == proto.OP_HELLO:
            if f["name"]:
                client.name = f["name"]
            return proto.encode_reply(
                op,
                rid,
                client_id=client_id,
                server_pid=os.getpid(),
                version=proto.VERSION,
            )

        if op == proto.OP_STATS:
            blob = json.dumps(self.stats(), sort_keys=True).encode("utf-8")
            return proto.encode_reply(op, rid, json=blob)

        if op == proto.OP_SHUTDOWN:
            self.request_shutdown()
            return proto.encode_reply(op, rid)

        if op == proto.OP_OPEN:
            path = f["path"]
            async with self._locked(self._meta_lock, client):
                handle_id = self._next_handle
                self._next_handle += 1
                # The handle id doubles as the PLFS pid: each client
                # handle gets its own dropping stream, exactly as each
                # process does on the direct path.
                plfs_fd = await loop.run_in_executor(
                    None,
                    lambda: plfs_api.plfs_open(
                        path,
                        f["flags"],
                        handle_id,
                        f["mode"] & 0o7777,
                        self.open_options,
                    ),
                )
            handle = _Handle(handle_id, plfs_fd, path, client)
            self._handles[handle_id] = handle
            owned.add(handle_id)
            client.opens += 1
            if f["flags"] & os.O_CREAT:
                client.creates += 1
            return proto.encode_reply(op, rid, handle=handle_id)

        if op == proto.OP_ATTACH_SHM:
            if not self.allow_shm:
                raise OSError(
                    errno.EOPNOTSUPP, "shared-memory data plane disabled"
                )
            from multiprocessing import shared_memory

            if conn_shm["seg"] is not None:
                with contextlib.suppress(BufferError, OSError):
                    conn_shm["seg"].close()
                conn_shm["seg"] = None
            try:
                seg = shared_memory.SharedMemory(name=f["name"])
            except (OSError, ValueError) as exc:
                raise OSError(
                    errno.ENOENT, f"cannot map shm segment {f['name']!r}: {exc}"
                ) from None
            # Attaching registers the segment with this process's resource
            # tracker (bpo-39959), which would unlink the *client's* live
            # segment when the daemon exits.  The client owns the segment;
            # take our name back out of the tracker.
            with contextlib.suppress(Exception):
                from multiprocessing import resource_tracker

                resource_tracker.unregister(seg._name, "shared_memory")
            if seg.size < f["size"]:
                seg.close()
                raise OSError(
                    errno.EINVAL,
                    f"shm segment is {seg.size} bytes, client announced {f['size']}",
                )
            conn_shm["seg"] = seg
            self.totals["shm_attaches"] += 1
            return proto.encode_reply(op, rid)

        if op == proto.OP_CREATE:
            path = f["path"]
            async with self._locked(self._meta_lock, client):
                await loop.run_in_executor(
                    None, lambda: plfs_api.plfs_create(path, f["mode"] & 0o7777)
                )
            client.creates += 1
            return proto.encode_reply(op, rid)

        if op == proto.OP_UNLINK:
            path = f["path"]
            async with self._locked(self._meta_lock, client):
                await loop.run_in_executor(None, plfs_api.plfs_unlink, path)
            return proto.encode_reply(op, rid)

        # Everything below operates on an owned handle.
        handle = self._handles.get(f["handle"])
        if handle is None or handle.id not in owned:
            raise OSError(errno.EBADF, "no such daemon handle")
        handle.touch()

        if op == proto.OP_WRITE:
            data = f["data"]
            async with self._locked(self._writer_lock(handle.path), client):
                written = await loop.run_in_executor(
                    None,
                    lambda: plfs_api.plfs_write(
                        handle.plfs_fd, data, len(data), f["offset"]
                    ),
                )
            client.appends += 1
            client.bytes_written += written
            return proto.encode_reply(op, rid, written=written)

        if op == proto.OP_WRITE_SHM:
            seg = conn_shm["seg"]
            if seg is None:
                raise OSError(errno.EINVAL, "no shm segment attached")
            shm_off, count = f["shm_off"], f["count"]
            if shm_off + count > seg.size:
                raise OSError(
                    errno.EINVAL,
                    f"shm descriptor [{shm_off}, {shm_off + count}) outside "
                    f"segment of {seg.size} bytes",
                )
            data = seg.buf[shm_off : shm_off + count]
            try:
                async with self._locked(self._writer_lock(handle.path), client):
                    written = await loop.run_in_executor(
                        None,
                        lambda: plfs_api.plfs_write(
                            handle.plfs_fd, data, count, f["offset"]
                        ),
                    )
            finally:
                # Drop the exported view promptly: a lingering export would
                # make the segment unmappable to close on disconnect.
                data.release()
            client.appends += 1
            client.bytes_written += written
            self.totals["shm_appends"] += 1
            return proto.encode_reply(op, rid, written=written)

        if op == proto.OP_READ:
            # No daemon lock: the shared index cache is the
            # synchronization point, and it revalidates by epoch.
            data = await loop.run_in_executor(
                None,
                lambda: plfs_api.plfs_read(handle.plfs_fd, f["count"], f["offset"]),
            )
            client.reads += 1
            client.bytes_read += len(data)
            return proto.encode_reply(op, rid, data=data)

        if op == proto.OP_SYNC:
            async with self._locked(self._writer_lock(handle.path), client):
                await loop.run_in_executor(
                    None, plfs_api.plfs_sync, handle.plfs_fd
                )
            return proto.encode_reply(op, rid)

        if op == proto.OP_GETATTR:
            st = await loop.run_in_executor(
                None, plfs_api.plfs_getattr, handle.plfs_fd
            )
            return proto.encode_reply(
                op,
                rid,
                size=st.st_size,
                mode=st.st_mode,
                mtime_ns=int(st.st_mtime * 1e9),
            )

        if op == proto.OP_TRUNC:
            async with self._locked(self._meta_lock, client):
                async with self._locked(
                    self._writer_lock(handle.path), client
                ):
                    await loop.run_in_executor(
                        None,
                        lambda: plfs_api.plfs_trunc(handle.plfs_fd, f["offset"]),
                    )
            return proto.encode_reply(op, rid)

        if op == proto.OP_CLOSE:
            self._handles.pop(handle.id, None)
            owned.discard(handle.id)
            client.closes += 1
            try:
                async with self._locked(
                    self._writer_lock(handle.path), client
                ):
                    refs = await loop.run_in_executor(
                        None, plfs_api.plfs_close, handle.plfs_fd
                    )
            except OSError:
                # The slot is already reclaimed (plfs_close tore the
                # handle down before raising); surface the error.
                self.totals["handles_reclaimed_after_error"] += 1
                raise
            return proto.encode_reply(op, rid, refs=refs)

        raise OSError(errno.ENOSYS, f"unhandled opcode {op}")


# ---------------------------------------------------------------------- #
# entry point used by the CLI
# ---------------------------------------------------------------------- #


async def serve(
    socket_path: str,
    *,
    open_options: plfs_api.OpenOptions | None = None,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    reap_interval: float = DEFAULT_REAP_INTERVAL,
    allow_shm: bool = True,
    ready: "asyncio.Event | None" = None,
) -> PlfsdServer:
    """Run a daemon until shutdown is requested.

    Arms a fault injector from the environment first (``REPRO_FAULTS`` /
    ``REPRO_FAULT_SEED``), so injection specs configured by a parent
    process propagate into the daemon exactly like into any other
    subprocess of the fault harness.  The plfs-san race detector arms the
    same way (``REPRO_SANITIZE`` / ``REPRO_SANITIZE_DIR``): a sanitized
    test session reaches into daemon subprocesses too, and violations
    come back in the exit report the pytest plugin sweeps.
    """
    from repro.faults import injector_from_env
    from repro.sanitize import runtime as sanitize_runtime

    sanitize_runtime.enable_from_env()
    server = PlfsdServer(
        socket_path,
        open_options=open_options,
        idle_timeout=idle_timeout,
        reap_interval=reap_interval,
        allow_shm=allow_shm,
    )
    injector = injector_from_env()
    ctx = injector.armed() if injector is not None else contextlib.nullcontext()
    with ctx:
        await server.start()
        if ready is not None:
            ready.set()
        await server.serve_forever()
    return server


__all__ = ["PlfsdServer", "serve", "DEFAULT_IDLE_TIMEOUT", "DEFAULT_REAP_INTERVAL"]
