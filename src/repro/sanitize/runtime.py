"""plfs-san: the runtime lockset race detector.

Static analysis proves what it can resolve; everything else — executor
threads touching writer state, the daemon's lock-free read path, shim
threads hammering one FdTable — needs a witness at runtime.  This module
is that witness: an Eraser-style lockset checker over the shared state
the production classes register via ``_SANITIZE_SHARED``.

How it attaches (all reversible, nothing imported by production code):

- **Fields** become data-descriptor properties whose storage key is the
  field name itself, so ``disable()`` simply deletes the property and the
  plain instance attribute is found again.  Container values (dict /
  OrderedDict / list) are lazily adopted into tracked subclasses that
  report reads and writes; rebinding the attribute is itself a write
  (``MountTable.remove`` replaces the whole list).
- **Locks** (the guard attributes, plus anything in ``_SANITIZE_LOCKS``)
  are wrapped in :class:`TrackedLock` / :class:`TrackedAsyncLock`, which
  maintain the per-thread (per-task for asyncio) held set.
- **Executor inheritance**: the daemon runs blocking PLFS calls in a
  thread pool while holding asyncio locks.  A patched
  ``BaseEventLoop.run_in_executor`` pushes the submitting task's held
  asyncio locks into the worker thread's lockset for the duration of the
  call, restoring the happens-before the pool hop erased.
- **Handle-domain virtual locks**: ``plfs_*`` calls taking an open handle
  push ``plfs-handle#<id>`` for the call's duration.  Per-handle
  serialization (the daemon's per-container writer locks, a client's own
  fd) is a real happens-before that no lock object represents; the
  virtual lock stands in for it.  The cost is honesty about scope: races
  *within* one handle's operations are masked, exactly like a TSan
  suppression, and the static passes stay authoritative there.

The lockset algorithm is Eraser's state machine per variable: virgin →
exclusive(first thread) → shared / shared-modified on the first foreign
access (candidate set re-initialized to that access's held set, which
forgives initialization writes) → every later access intersects the
candidate set with the locks actually held → a modified variable whose
candidate set hits empty is a violation, reported once with the first
access stack from every participating thread as evidence.

Subprocesses (the plfsd daemon under the stress tests) activate via
``REPRO_SANITIZE=1`` and write a JSON report to ``REPRO_SANITIZE_DIR`` at
exit; the pytest plugin sweeps those reports after the session.
"""

from __future__ import annotations

import asyncio
import asyncio.base_events
import atexit
import functools
import itertools
import json
import os
import threading
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.lint.findings import LintFinding, RULES

from .registry import runtime_classes

__all__ = [
    "RaceViolation",
    "RaceChecker",
    "TrackedLock",
    "TrackedAsyncLock",
    "enable",
    "disable",
    "enabled",
    "reset",
    "violations",
    "current_lockset",
    "enable_from_env",
    "write_report",
    "load_reports",
    "ENV_FLAG",
    "ENV_DIR",
]

ENV_FLAG = "REPRO_SANITIZE"
ENV_DIR = "REPRO_SANITIZE_DIR"

_enabled = False
_checker: "RaceChecker | None" = None
#: (owner object, attribute, original value, attribute existed) for undo
_patches: list[tuple[Any, str, Any, bool]] = []
_instance_seq = itertools.count()


# ---------------------------------------------------------------------- #
# the per-thread / per-task lockset
# ---------------------------------------------------------------------- #


class _Tracker(threading.local):
    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.busy = False


_tracker = _Tracker()
#: id(task) -> {asyncio lock label: hold count}; touched only from the
#: loop thread (acquire/release and executor submission all run there)
_task_held: dict[int, dict[str, int]] = {}


def _current_task() -> Any:
    try:
        return asyncio.current_task()
    except RuntimeError:
        return None


def _push(label: str) -> None:
    _tracker.counts[label] = _tracker.counts.get(label, 0) + 1


def _pop(label: str) -> None:
    count = _tracker.counts.get(label, 0) - 1
    if count <= 0:
        _tracker.counts.pop(label, None)
    else:
        _tracker.counts[label] = count


def current_lockset() -> frozenset[str]:
    """Labels this thread (and, on a loop thread, this task) holds now."""
    labels = {label for label, count in _tracker.counts.items() if count > 0}
    task = _current_task()
    if task is not None:
        held = _task_held.get(id(task))
        if held:
            labels.update(label for label, count in held.items() if count > 0)
    return frozenset(labels)


def _capture_stack() -> list[str]:
    frames: list[str] = []
    for fr in traceback.extract_stack(limit=24):
        if fr.filename.endswith(os.path.join("sanitize", "runtime.py")):
            continue
        frames.append(f"{os.path.basename(fr.filename)}:{fr.lineno}:{fr.name}")
    return frames[-8:]


# ---------------------------------------------------------------------- #
# tracked locks
# ---------------------------------------------------------------------- #


class TrackedLock:
    """A threading.Lock/RLock proxy that mirrors held state per thread."""

    def __init__(self, inner: Any, label: str) -> None:
        self._inner = inner
        self.label = label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = bool(self._inner.acquire(blocking, timeout))
        if ok:
            _push(self.label)
        return ok

    def release(self) -> None:
        self._inner.release()
        _pop(self.label)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        return bool(probe()) if callable(probe) else False


class TrackedAsyncLock:
    """An asyncio.Lock proxy that mirrors held state per task."""

    def __init__(self, inner: asyncio.Lock, label: str) -> None:
        self._inner = inner
        self.label = label

    async def acquire(self) -> bool:
        await self._inner.acquire()
        task = _current_task()
        if task is not None:
            held = _task_held.setdefault(id(task), {})
            held[self.label] = held.get(self.label, 0) + 1
        return True

    def release(self) -> None:
        self._inner.release()
        task = _current_task()
        if task is not None:
            held = _task_held.get(id(task))
            if held is not None:
                count = held.get(self.label, 0) - 1
                if count <= 0:
                    held.pop(self.label, None)
                else:
                    held[self.label] = count
                if not held:
                    _task_held.pop(id(task), None)

    async def __aenter__(self) -> "TrackedAsyncLock":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()


# ---------------------------------------------------------------------- #
# the Eraser state machine
# ---------------------------------------------------------------------- #


@dataclass
class RaceViolation:
    """One shared-state access whose candidate lockset hit empty."""

    var: str
    kind: str
    thread: int
    lockset: list[str]
    stack: list[str]
    history: list[dict]

    def as_dict(self) -> dict:
        return {
            "var": self.var,
            "kind": self.kind,
            "thread": self.thread,
            "lockset": list(self.lockset),
            "stack": list(self.stack),
            "history": [dict(h) for h in self.history],
        }

    def render(self) -> str:
        lines = [
            f"lockset violation on {self.var}: {self.kind} from thread "
            f"{self.thread} with no common lock",
            "  at: " + " <- ".join(self.stack),
        ]
        for entry in self.history:
            locks = ", ".join(entry["lockset"]) or "(none)"
            lines.append(
                f"  first {entry['kind']} from thread {entry['thread']} "
                f"held [{locks}] at: " + " <- ".join(entry["stack"])
            )
        return "\n".join(lines)

    def to_finding(self) -> LintFinding:
        spec = RULES["LDP204"]
        return LintFinding(
            rule=spec.rule_id,
            name=spec.name,
            severity=spec.severity,
            file=self.var,
            line=0,
            col=0,
            detail=(
                f"{self.kind} access to {self.var} with no lock consistently "
                "held across the threads touching it"
            ),
            recommendation=spec.recommendation,
            evidence={
                "lockset": ",".join(self.lockset) or "(none)",
                "stack": " <- ".join(self.stack),
                "threads": ",".join(
                    str(h["thread"]) for h in self.history
                ),
            },
        )


@dataclass
class _VarState:
    label: str
    state: str = "virgin"  # virgin|exclusive|shared|shared_modified|reported
    owner: int = -1
    candidates: frozenset = frozenset()
    threads_seen: set = field(default_factory=set)
    history: list = field(default_factory=list)


class RaceChecker:
    """Per-variable Eraser lockset states, violation collection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()  # a plain lock: never itself tracked
        self._vars: dict[str, _VarState] = {}
        self.violations: list[RaceViolation] = []

    def record(self, label: str, kind: str) -> None:
        tid = threading.get_ident()
        held = current_lockset()
        with self._lock:
            st = self._vars.get(label)
            if st is None:
                st = self._vars[label] = _VarState(label)
            if tid not in st.threads_seen:
                st.threads_seen.add(tid)
                st.history.append(
                    {
                        "thread": tid,
                        "kind": kind,
                        "lockset": sorted(held),
                        "stack": _capture_stack(),
                    }
                )
            if st.state == "reported":
                return
            if st.state == "virgin":
                st.state = "exclusive"
                st.owner = tid
                return
            if st.state == "exclusive":
                if tid == st.owner:
                    return
                # first foreign access: re-initialize the candidate set,
                # forgiving unsynchronized initialization by the creator
                st.candidates = held
                st.state = "shared_modified" if kind == "write" else "shared"
            else:
                st.candidates = st.candidates & held
                if kind == "write" and st.state == "shared":
                    st.state = "shared_modified"
            if st.state == "shared_modified" and not st.candidates:
                st.state = "reported"
                self.violations.append(
                    RaceViolation(
                        var=label,
                        kind=kind,
                        thread=tid,
                        lockset=sorted(held),
                        stack=_capture_stack(),
                        history=[dict(h) for h in st.history],
                    )
                )


def _record_event(label: str, kind: str) -> None:
    if not _enabled or _checker is None or _tracker.busy:
        return
    _tracker.busy = True
    try:
        _checker.record(label, kind)
    finally:
        _tracker.busy = False


# ---------------------------------------------------------------------- #
# tracked containers
# ---------------------------------------------------------------------- #


class _DictOps:
    _san_label = "?"

    def _ev(self, kind: str) -> None:
        _record_event(self._san_label, kind)

    def __getitem__(self, key: Any) -> Any:
        self._ev("read")
        return super().__getitem__(key)  # type: ignore[misc]

    def get(self, key: Any, default: Any = None) -> Any:
        self._ev("read")
        return super().get(key, default)  # type: ignore[misc]

    def __contains__(self, key: Any) -> bool:
        self._ev("read")
        return super().__contains__(key)  # type: ignore[misc]

    def __iter__(self) -> Iterator:
        self._ev("read")
        return super().__iter__()  # type: ignore[misc]

    def __len__(self) -> int:
        self._ev("read")
        return super().__len__()  # type: ignore[misc]

    def keys(self) -> Any:
        self._ev("read")
        return super().keys()  # type: ignore[misc]

    def values(self) -> Any:
        self._ev("read")
        return super().values()  # type: ignore[misc]

    def items(self) -> Any:
        self._ev("read")
        return super().items()  # type: ignore[misc]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._ev("write")
        super().__setitem__(key, value)  # type: ignore[misc]

    def __delitem__(self, key: Any) -> None:
        self._ev("write")
        super().__delitem__(key)  # type: ignore[misc]

    def pop(self, *args: Any) -> Any:
        self._ev("write")
        return super().pop(*args)  # type: ignore[misc]

    def popitem(self, *args: Any, **kwargs: Any) -> Any:
        self._ev("write")
        return super().popitem(*args, **kwargs)  # type: ignore[misc]

    def clear(self) -> None:
        self._ev("write")
        super().clear()  # type: ignore[misc]

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._ev("write")
        super().update(*args, **kwargs)  # type: ignore[misc]

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._ev("write")
        return super().setdefault(key, default)  # type: ignore[misc]


class _TrackedDict(_DictOps, dict):
    pass


class _TrackedOrderedDict(_DictOps, OrderedDict):
    def move_to_end(self, key: Any, last: bool = True) -> None:
        self._ev("write")
        OrderedDict.move_to_end(self, key, last)


class _TrackedList(list):
    _san_label = "?"

    def _ev(self, kind: str) -> None:
        _record_event(self._san_label, kind)

    def __getitem__(self, index: Any) -> Any:
        self._ev("read")
        return list.__getitem__(self, index)

    def __iter__(self) -> Iterator:
        self._ev("read")
        return list.__iter__(self)

    def __len__(self) -> int:
        self._ev("read")
        return list.__len__(self)

    def __contains__(self, item: Any) -> bool:
        self._ev("read")
        return list.__contains__(self, item)

    def index(self, *args: Any) -> int:
        self._ev("read")
        return list.index(self, *args)

    def append(self, item: Any) -> None:
        self._ev("write")
        list.append(self, item)

    def extend(self, items: Iterable) -> None:
        self._ev("write")
        list.extend(self, items)

    def insert(self, index: int, item: Any) -> None:
        self._ev("write")
        list.insert(self, index, item)

    def remove(self, item: Any) -> None:
        self._ev("write")
        list.remove(self, item)

    def pop(self, *args: Any) -> Any:
        self._ev("write")
        return list.pop(self, *args)

    def clear(self) -> None:
        self._ev("write")
        list.clear(self)

    def __setitem__(self, index: Any, value: Any) -> None:
        self._ev("write")
        list.__setitem__(self, index, value)

    def __delitem__(self, index: Any) -> None:
        self._ev("write")
        list.__delitem__(self, index)

    def __iadd__(self, other: Iterable) -> "_TrackedList":
        self._ev("write")
        list.extend(self, other)
        return self

    def sort(self, **kwargs: Any) -> None:
        self._ev("write")
        list.sort(self, **kwargs)


def _owner_seq(instance: Any) -> int:
    seq = instance.__dict__.get("_san_seq")
    if seq is None:
        seq = next(_instance_seq)
        instance.__dict__["_san_seq"] = seq
    return int(seq)


def _adopt(value: Any, label: str) -> Any:
    """Wrap a container in its tracked twin; idempotent, order-preserving.

    Population goes through the base-class methods so adoption itself
    never records events.
    """
    if isinstance(value, (_TrackedDict, _TrackedOrderedDict, _TrackedList)):
        return value
    tracked: Any
    if type(value) is OrderedDict:
        tracked = _TrackedOrderedDict()
        for key, item in value.items():
            OrderedDict.__setitem__(tracked, key, item)
    elif type(value) is dict:
        tracked = _TrackedDict()
        dict.update(tracked, value)
    elif type(value) is list:
        tracked = _TrackedList()
        list.extend(tracked, value)
    else:
        return value
    tracked._san_label = label
    return tracked


# ---------------------------------------------------------------------- #
# instrumentation plumbing
# ---------------------------------------------------------------------- #


def _patch(obj: Any, attr: str, replacement: Any) -> None:
    existed = attr in vars(obj)
    _patches.append((obj, attr, vars(obj).get(attr), existed))
    setattr(obj, attr, replacement)


def _unpatch_all() -> None:
    while _patches:
        obj, attr, original, existed = _patches.pop()
        if existed:
            setattr(obj, attr, original)
        else:
            try:
                delattr(obj, attr)
            except AttributeError:
                pass


def _install_field(cls: type, name: str) -> None:
    """Shadow *name* with a property storing under the same key, so a
    later ``disable()`` leaves instances untouched and readable."""

    def fget(self: Any) -> Any:
        try:
            value = self.__dict__[name]
        except KeyError:
            raise AttributeError(name) from None
        if _enabled:
            label = f"{cls.__name__}.{name}#{_owner_seq(self)}"
            adopted = _adopt(value, label)
            if adopted is not value:
                self.__dict__[name] = adopted
            return adopted
        return value

    def fset(self: Any, value: Any) -> None:
        if _enabled:
            label = f"{cls.__name__}.{name}#{_owner_seq(self)}"
            _record_event(label, "write")
            value = _adopt(value, label)
        self.__dict__[name] = value

    _patch(cls, name, property(fget, fset))


def _install_lock(cls: type, name: str) -> None:
    def fget(self: Any) -> Any:
        try:
            value = self.__dict__[name]
        except KeyError:
            raise AttributeError(name) from None
        if _enabled and not isinstance(value, (TrackedLock, TrackedAsyncLock)):
            label = f"{cls.__name__}.{name}#{_owner_seq(self)}"
            if isinstance(value, asyncio.Lock):
                value = TrackedAsyncLock(value, label)
            else:
                value = TrackedLock(value, label)
            self.__dict__[name] = value
        return value

    def fset(self: Any, value: Any) -> None:
        self.__dict__[name] = value

    _patch(cls, name, property(fget, fset))


def _patch_run_in_executor() -> None:
    """Inherit the submitting task's asyncio locks into the pool thread.

    The daemon's happens-before for blocking PLFS calls is 'this task
    holds the writer/meta lock while the call runs in the executor'; the
    thread hop would otherwise erase that edge from the lockset.
    """
    original = asyncio.base_events.BaseEventLoop.run_in_executor

    def patched(self: Any, executor: Any, func: Callable, *args: Any) -> Any:
        labels: tuple[str, ...] = ()
        task = _current_task()
        if task is not None:
            held = _task_held.get(id(task))
            if held:
                labels = tuple(
                    label for label, count in held.items() if count > 0
                )
        if not labels:
            return original(self, executor, func, *args)

        def inherit(*call_args: Any) -> Any:
            for label in labels:
                _push(label)
            try:
                return func(*call_args)
            finally:
                for label in labels:
                    _pop(label)

        return original(self, executor, inherit, *args)

    _patch(asyncio.base_events.BaseEventLoop, "run_in_executor", patched)


#: api functions whose first argument is an open PLFS handle (or, for the
#: *_or_path pair, possibly a path — the wrapper skips those calls)
_FD_FUNCTIONS = (
    "plfs_close",
    "plfs_getattr",
    "plfs_read",
    "plfs_read_into",
    "plfs_ref",
    "plfs_sync",
    "plfs_trunc",
    "plfs_write",
    "plfs_writev",
)


def _fd_wrapper(fn: Callable) -> Callable:
    @functools.wraps(fn)
    def wrapper(fd: Any, *args: Any, **kwargs: Any) -> Any:
        if not _enabled or isinstance(fd, (str, bytes, os.PathLike)):
            return fn(fd, *args, **kwargs)
        label = f"plfs-handle#{id(fd)}"
        _push(label)
        try:
            return fn(fd, *args, **kwargs)
        finally:
            _pop(label)

    return wrapper


def _patch_api() -> None:
    import repro.plfs as plfs_pkg
    from repro.plfs import api as plfs_api

    for name in _FD_FUNCTIONS:
        original = getattr(plfs_api, name)
        wrapper = _fd_wrapper(original)
        _patch(plfs_api, name, wrapper)
        # the package re-exports these as separate bindings; keep both
        # views pointing at the same wrapper (and restore both)
        if getattr(plfs_pkg, name, None) is original:
            _patch(plfs_pkg, name, wrapper)


def _patch_writer_lock(server_cls: type) -> None:
    original = server_cls._writer_lock  # type: ignore[attr-defined]

    def patched(self: Any, path: str) -> Any:
        lock = original(self, path)
        if _enabled and not isinstance(lock, TrackedAsyncLock):
            lock = TrackedAsyncLock(
                lock, f"PlfsdServer._writer_locks[{path}]"
            )
            self._writer_locks[path] = lock
        return lock

    _patch(server_cls, "_writer_lock", patched)


# ---------------------------------------------------------------------- #
# lifecycle
# ---------------------------------------------------------------------- #


def _instrument_class(cls: type) -> None:
    shared = getattr(cls, "_SANITIZE_SHARED", None)
    if not shared:
        return
    lock_attrs = sorted({guard for guard in shared.values() if guard})
    for extra in getattr(cls, "_SANITIZE_LOCKS", ()):
        if extra not in lock_attrs:
            lock_attrs.append(extra)
    for attr in sorted(shared):
        _install_field(cls, attr)
    for attr in lock_attrs:
        _install_lock(cls, attr)
    if cls.__name__ == "PlfsdServer":
        _patch_writer_lock(cls)


def enable(classes: Iterable[type] | None = None) -> None:
    """Instrument *classes* (default: the registry) and start checking."""
    global _enabled, _checker
    if _enabled:
        return
    target_classes = list(runtime_classes() if classes is None else classes)
    _checker = RaceChecker()
    for cls in target_classes:
        _instrument_class(cls)
    _patch_run_in_executor()
    _patch_api()
    _enabled = True


def instrument(classes: Iterable[type]) -> None:
    """Instrument extra classes on an already-enabled detector.

    Lets test fixtures register their own ``_SANITIZE_SHARED`` classes
    even when a ``--sanitize`` session armed the detector first.
    """
    if not _enabled:
        raise RuntimeError("plfs-san is not enabled")
    for cls in classes:
        _instrument_class(cls)


def disable() -> None:
    """Remove every patch; already-adopted containers go quiet."""
    global _enabled
    _enabled = False
    _unpatch_all()


def enabled() -> bool:
    return _enabled


def reset() -> None:
    """Forget all variable states and violations (keeps instrumentation)."""
    global _checker
    _checker = RaceChecker() if _enabled else None


def violations() -> list[RaceViolation]:
    return list(_checker.violations) if _checker is not None else []


# ---------------------------------------------------------------------- #
# subprocess activation and reports
# ---------------------------------------------------------------------- #


def enable_from_env() -> bool:
    """Arm the detector when ``REPRO_SANITIZE`` asks for it.

    Called by daemon entry points, mirroring how ``REPRO_FAULTS`` arms
    the fault injector in child processes.  When ``REPRO_SANITIZE_DIR``
    is set, a JSON report is written there at interpreter exit — always,
    so a missing file distinguishes a killed process from a clean one.
    """
    if os.environ.get(ENV_FLAG, "") not in ("1", "true", "yes", "on"):
        return False
    if not _enabled:
        enable()
        report_dir = os.environ.get(ENV_DIR, "")
        if report_dir:
            atexit.register(_dump_report, report_dir)
    return True


def _dump_report(report_dir: str) -> None:
    try:
        write_report(os.path.join(report_dir, f"sanitize-{os.getpid()}.json"))
    except OSError:  # pragma: no cover - report dir vanished at exit
        pass


def write_report(path: str) -> None:
    from repro.analysis.export import canonical_json

    payload = {
        "pid": os.getpid(),
        "violations": [v.as_dict() for v in violations()],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(payload))
    os.replace(tmp, path)


def load_reports(report_dir: str) -> list[dict]:
    """Every subprocess report in *report_dir*, sorted by filename."""
    reports: list[dict] = []
    try:
        names = sorted(os.listdir(report_dir))
    except OSError:
        return reports
    for name in names:
        if not (name.startswith("sanitize-") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(report_dir, name), encoding="utf-8") as fh:
                reports.append(json.load(fh))
        except (OSError, json.JSONDecodeError):  # pragma: no cover
            continue
    return reports
