"""pytest integration: ``--sanitize`` runs suites under the race detector.

With the flag, the runtime detector is enabled for the whole session and
every test gets an invisible assertion appended: *no lockset violation
happened while you ran*.  Tests that exist to provoke a violation (the
known-racy fixture) opt out with ``@pytest.mark.sanitize_expect_races``
and assert on :func:`repro.sanitize.runtime.violations` themselves.

Subprocesses are covered too: the session exports ``REPRO_SANITIZE=1``
and a report directory before any test spawns a daemon, entry points arm
themselves via :func:`repro.sanitize.runtime.enable_from_env`, and the
session teardown sweeps the JSON reports each child wrote at exit —
a violation inside the daemon fails the run just like a local one.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any, Iterator

import pytest

_MARKER = "sanitize_expect_races"


def pytest_addoption(parser: Any) -> None:
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run the plfs-san lockset race detector over this session",
    )


def pytest_configure(config: Any) -> None:
    config.addinivalue_line(
        "markers",
        f"{_MARKER}: this test provokes lockset violations on purpose; "
        "the --sanitize session must not fail on them",
    )
    if not config.getoption("--sanitize"):
        return
    from repro.sanitize import runtime

    report_dir = tempfile.mkdtemp(prefix="repro-sanitize-")
    prior = {
        key: os.environ.get(key) for key in (runtime.ENV_FLAG, runtime.ENV_DIR)
    }
    os.environ[runtime.ENV_FLAG] = "1"
    os.environ[runtime.ENV_DIR] = report_dir
    runtime.enable()
    config._repro_sanitize = {"dir": report_dir, "prior": prior}


def pytest_unconfigure(config: Any) -> None:
    state = getattr(config, "_repro_sanitize", None)
    if state is None:
        return
    from repro.sanitize import runtime

    runtime.disable()
    for key, value in state["prior"].items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    shutil.rmtree(state["dir"], ignore_errors=True)


@pytest.fixture(autouse=True)
def _sanitize_guard(request: Any) -> Iterator[None]:
    """Fail any test during which a new lockset violation was recorded."""
    if getattr(request.config, "_repro_sanitize", None) is None:
        yield
        return
    from repro.sanitize import runtime

    before = len(runtime.violations())
    yield
    if request.node.get_closest_marker(_MARKER) is not None:
        return
    fresh = runtime.violations()[before:]
    if fresh:
        pytest.fail(
            "plfs-san lockset violations during this test:\n"
            + "\n".join(v.render() for v in fresh),
            pytrace=False,
        )


@pytest.fixture(autouse=True, scope="session")
def _sanitize_subprocess_sweep(request: Any) -> Iterator[None]:
    """After the last test, collect reports written by child processes."""
    yield
    state = getattr(request.config, "_repro_sanitize", None)
    if state is None:
        return
    from repro.sanitize import runtime

    lines: list[str] = []
    for report in runtime.load_reports(state["dir"]):
        for violation in report.get("violations", []):
            lines.append(
                f"pid {report.get('pid')}: {violation.get('kind')} on "
                f"{violation.get('var')} with lockset "
                f"{violation.get('lockset')}"
            )
    if lines:
        pytest.fail(
            "plfs-san lockset violations in subprocesses:\n"
            + "\n".join(lines),
            pytrace=False,
        )
