"""The shared-state and lock registry the sanitizer passes consume.

Production classes declare what the sanitizer should watch through a
lightweight ``_SANITIZE_SHARED`` class attribute — a mapping of
``field name -> guarding lock attribute`` (``None`` when the field is
protected by something other than a lock: single-owner discipline,
event-loop confinement, per-handle serialization).  Production code never
imports this package; the hooks are plain data, and this module is the one
place that enumerates them, so the runtime detector
(:mod:`repro.sanitize.runtime`) and the static passes
(:mod:`repro.sanitize.static`, :mod:`repro.sanitize.contracts`) agree on
the registry.

The static side extends PR 2's :class:`~repro.lint.concurrency.GuardSpec`
contracts (which knew exactly three ``repro.core`` guards) with the PR-4
shared index cache and the PR-3 backing-store global, and adds
:class:`LockSpec` entries for the plfsd daemon's asyncio locks so the
lock-order graph sees the meta/writer nesting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.concurrency import DEFAULT_GUARDS, GuardSpec

__all__ = [
    "LockSpec",
    "EXTENDED_GUARDS",
    "DEFAULT_LOCKS",
    "DEFAULT_TARGETS",
    "runtime_classes",
    "lock_from_guard",
]

#: the packages the whole-system static passes walk (PR 2 walked only
#: ``repro.core``; the daemon and the plfs fast lanes are now in scope)
DEFAULT_TARGETS: tuple[str, ...] = ("repro.core", "repro.plfs", "repro.plfsd")


@dataclass(frozen=True)
class LockSpec:
    """One known lock: where it lives and how it is acquired.

    ``factory`` names a method whose *return value* is a member of this
    lock family (``PlfsdServer._writer_lock(path)`` hands out one asyncio
    lock per container) — acquiring the factory's result acquires the
    family node in the lock-order graph.
    """

    module: str
    owner: str  # class name, "" for a module-level global
    attr: str  # attribute / global name holding the lock
    kind: str = "threading"  # "threading" | "asyncio"
    factory: str = ""  # method returning a member of this family

    @property
    def label(self) -> str:
        scope = self.owner or self.module.rsplit(".", 1)[-1]
        return f"{scope}.{self.attr}"


def lock_from_guard(guard: GuardSpec) -> LockSpec:
    """The :class:`LockSpec` implied by a guarded-field contract."""
    if guard.guard.startswith("self."):
        return LockSpec(guard.module, guard.owner, guard.guard[len("self."):])
    return LockSpec(guard.module, "", guard.guard)


#: PR 2's core guards plus the shared index cache and the backing global
EXTENDED_GUARDS: list[GuardSpec] = [
    *DEFAULT_GUARDS,
    GuardSpec("repro.plfs.cache", "IndexCache", "_entries", "self._lock"),
    GuardSpec("repro.plfs.cache", "IndexCache", "_generations", "self._lock"),
    GuardSpec("repro.plfs.backing", "", "_current", "_lock"),
]


def _default_locks() -> list[LockSpec]:
    locks: dict[tuple[str, str, str], LockSpec] = {}
    for guard in EXTENDED_GUARDS:
        spec = lock_from_guard(guard)
        locks[(spec.module, spec.owner, spec.attr)] = spec
    for spec in (
        LockSpec("repro.plfsd.server", "PlfsdServer", "_meta_lock", kind="asyncio"),
        LockSpec(
            "repro.plfsd.server",
            "PlfsdServer",
            "_writer_locks",
            kind="asyncio",
            factory="_writer_lock",
        ),
    ):
        locks[(spec.module, spec.owner, spec.attr)] = spec
    return [locks[key] for key in sorted(locks)]


#: every lock the static lock-order pass recognizes
DEFAULT_LOCKS: list[LockSpec] = _default_locks()


def runtime_classes() -> list[type]:
    """The production classes carrying ``_SANITIZE_SHARED`` hooks.

    Imported lazily: the registry must be importable without dragging in
    the daemon (or numpy) — only the runtime detector pays this cost.
    """
    from repro.core.fdtable import FdTable
    from repro.core.mounts import MountTable
    from repro.plfs.cache import IndexCache
    from repro.plfs.writer import WriteFile
    from repro.plfsd.server import PlfsdServer

    return [FdTable, MountTable, IndexCache, WriteFile, PlfsdServer]
