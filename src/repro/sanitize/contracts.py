"""Declared ordering contracts over the write path (the LDP3xx pass).

PR 5's crash-consistency story rests on a handful of *orderings*: the WAL
record reaches the journal before the data bytes it describes, the index
is flushed before the cross-process generation counter announces it, data
is durable before the barrier that claims it is.  Those invariants are
enforced today by the order of two adjacent calls in ``writer.py`` — one
well-meaning refactor away from silent corruption that only a crash at
the wrong instant would ever reveal.

This pass turns each invariant into an :class:`OrderingContract` — "in
this function, every call to *first* precedes every call to *then*" — and
verifies it by statement-order dataflow over the function body.  Call
sites are matched by the final dotted component (``store.write_data`` and
``self.store.write_data`` both match ``write_data``) and compared by
source position, so swapping the two statements fails
``repro-lint --self-audit`` (LDP301) and deleting one of them outright is
also a violation (LDP302): a contract whose operations vanished is stale
authority and must be updated deliberately, not ignored.

The contract list is the authority; the detector output is evidence that
HEAD currently satisfies it.  Extend :data:`DEFAULT_CONTRACTS` whenever a
new ordering invariant is introduced.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import LintFinding, RULES, sort_findings

__all__ = ["OrderingContract", "DEFAULT_CONTRACTS", "check_contracts"]


@dataclass(frozen=True)
class OrderingContract:
    """Every *first* call precedes every *then* call inside *function*."""

    module: str
    owner: str  # class name, "" for module-level functions
    function: str
    first: tuple[str, ...]  # call names (final dotted component)
    then: tuple[str, ...]
    rationale: str

    @property
    def qualname(self) -> str:
        return f"{self.owner}.{self.function}" if self.owner else self.function


#: the PR-5 recovery invariants, written down as machine-checked contracts
DEFAULT_CONTRACTS: list[OrderingContract] = [
    OrderingContract(
        "repro.plfs.writer",
        "_Dropping",
        "append",
        ("_promise",),
        ("write_data",),
        "WAL promise persists before the data bytes it describes",
    ),
    OrderingContract(
        "repro.plfs.writer",
        "_Dropping",
        "append_many",
        ("_promise",),
        ("write_datav",),
        "WAL promises persist before the vectored data they describe",
    ),
    OrderingContract(
        "repro.plfs.writer",
        "_Dropping",
        "flush_index",
        ("flush_wal",),
        ("append_index",),
        "group-commit WAL batch is durable before index records land",
    ),
    OrderingContract(
        "repro.plfs.writer",
        "_Dropping",
        "sync",
        ("flush_index",),
        ("fsync",),
        "index records are written before the sync barrier claims them",
    ),
    OrderingContract(
        "repro.plfs.writer",
        "WriteFile",
        "_account",
        ("flush_index",),
        ("_invalidate",),
        "index flush precedes the cross-process generation bump",
    ),
    OrderingContract(
        "repro.plfs.writer",
        "WriteFile",
        "sync",
        ("sync",),
        ("_invalidate",),
        "per-dropping sync barriers complete before readers are signalled",
    ),
    OrderingContract(
        "repro.plfs.writer",
        "WriteFile",
        "close",
        ("close",),
        ("_invalidate",),
        "droppings are sealed before the generation bump publishes them",
    ),
    OrderingContract(
        "repro.plfs.cache",
        "",
        "invalidate_cross_process",
        ("invalidate",),
        ("bump_generation",),
        "local cache entry dies before the generation file tells peers",
    ),
    OrderingContract(
        "repro.plfs.backing",
        "BackingStore",
        "write_global_index",
        ("write",),
        ("replace",),
        "compacted index payload is complete before the atomic rename",
    ),
]


def _find_function(
    tree: ast.Module, owner: str, function: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    if owner:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == owner:
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name == function
                    ):
                        return item
        return None
    for node in tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == function
        ):
            return node
    return None


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _first_positions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, tuple[int, int]]:
    """Source position of the first call to each name inside *fn*."""
    out: dict[str, tuple[int, int]] = {}
    calls = [n for n in ast.walk(fn) if isinstance(n, ast.Call)]
    for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
        name = _call_name(call)
        if name is not None and name not in out:
            out[name] = (call.lineno, call.col_offset)
    return out


def _finding(
    rule_id: str,
    contract: OrderingContract,
    line: int,
    col: int,
    detail: str,
    **evidence: object,
) -> LintFinding:
    spec = RULES[rule_id]
    merged: dict[str, object] = {
        "contract": f"{contract.qualname}: {' < '.join(contract.first)}"
        f" before {' < '.join(contract.then)}",
        "rationale": contract.rationale,
    }
    merged.update(evidence)
    return LintFinding(
        rule=spec.rule_id,
        name=spec.name,
        severity=spec.severity,
        file=contract.module,
        line=line,
        col=col,
        detail=detail,
        recommendation=spec.recommendation,
        evidence={k: merged[k] for k in sorted(merged)},
    )


def check_contracts(
    contracts: list[OrderingContract] | None = None,
    *,
    sources: dict[str, str] | None = None,
) -> list[LintFinding]:
    """Verify every ordering contract against module source.

    *sources* overrides on-disk module source (module name -> text), which
    is how the regression tests prove a swapped WAL-write/data-append
    order is caught without mutating the tree.
    """
    contracts = DEFAULT_CONTRACTS if contracts is None else contracts
    sources = sources or {}
    findings: list[LintFinding] = []
    trees: dict[str, ast.Module] = {}

    for contract in contracts:
        if contract.module not in trees:
            if contract.module in sources:
                text = sources[contract.module]
            else:
                from .static import _load_source

                text = _load_source(contract.module)
            trees[contract.module] = ast.parse(text, filename=contract.module)
        fn = _find_function(trees[contract.module], contract.owner, contract.function)
        if fn is None:
            findings.append(
                _finding(
                    "LDP302",
                    contract,
                    1,
                    0,
                    f"contracted function {contract.qualname} no longer "
                    f"exists in {contract.module}; the ordering contract "
                    "is stale and must be updated deliberately",
                    missing=contract.qualname,
                )
            )
            continue
        positions = _first_positions(fn)
        missing = [
            op
            for op in (*contract.first, *contract.then)
            if op not in positions
        ]
        if missing:
            findings.append(
                _finding(
                    "LDP302",
                    contract,
                    fn.lineno,
                    fn.col_offset,
                    f"{contract.qualname} no longer calls "
                    f"{', '.join(missing)}; the ordering contract cannot "
                    "be verified and must be updated deliberately",
                    missing=",".join(missing),
                )
            )
            continue
        latest_first = max(positions[op] for op in contract.first)
        for op in contract.then:
            pos = positions[op]
            if pos <= latest_first:
                findings.append(
                    _finding(
                        "LDP301",
                        contract,
                        pos[0],
                        pos[1],
                        f"{contract.qualname} calls {op} at line {pos[0]} "
                        f"before the contracted prerequisite "
                        f"({', '.join(contract.first)} must complete "
                        f"first): {contract.rationale}",
                        observed=op,
                        observed_line=pos[0],
                        required_after=",".join(contract.first),
                    )
                )
    return sort_findings(findings)
