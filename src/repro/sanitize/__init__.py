"""repro.sanitize — race detection and ordering contracts for the stack.

Three verifiers over the concurrent PLFS reproduction, one registry:

- :mod:`repro.sanitize.runtime` ("plfs-san") — an Eraser-style lockset
  race detector attached to the shared state production classes register
  via ``_SANITIZE_SHARED``; runnable over whole suites as the pytest
  ``--sanitize`` mode, subprocess daemons included.
- :mod:`repro.sanitize.static` — interprocedural guard-bypass analysis,
  lock-order cycle detection and await-under-lock checks across
  ``repro.core`` + ``repro.plfs`` + ``repro.plfsd`` (LDP2xx).
- :mod:`repro.sanitize.contracts` — the PR-5 crash-ordering invariants
  declared as machine-checked contracts (LDP3xx).

The split mirrors the cache-vs-authority rule from the read path: the
runtime detector is *evidence* — a witness that the schedules actually
run were clean — while the static contracts are *authority*, failing
``repro-lint --self-audit`` the moment the source stops satisfying them.

Submodules import lazily where it matters; importing this package pulls
in nothing heavier than :mod:`repro.lint.findings`.
"""

from .registry import (
    DEFAULT_LOCKS,
    DEFAULT_TARGETS,
    EXTENDED_GUARDS,
    LockSpec,
    lock_from_guard,
    runtime_classes,
)

__all__ = [
    "DEFAULT_LOCKS",
    "DEFAULT_TARGETS",
    "EXTENDED_GUARDS",
    "LockSpec",
    "lock_from_guard",
    "runtime_classes",
]
