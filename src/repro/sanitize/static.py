"""Cross-module static lock analysis (the LDP2xx passes).

PR 2's concurrency checker was deliberately lexical: one file at a time,
one ``with self._lock:`` at a time.  That was the right contract for the
three-structure interposition core, but the concurrent stack now spans
modules — the daemon's asyncio locks, the shared index cache, the backing
global — and a helper called *under* a lock is exactly the shape the
lexical pass cannot see.  This module is the interprocedural replacement:

1. **Call graph** over the target packages (``repro.core`` + ``repro.plfs``
   + ``repro.plfsd`` by default), resolved through ``self`` dispatch,
   module-level functions, import aliases and module-global instances —
   never by guessing on bare attribute names, so every edge is one we can
   defend.
2. **Held-lock propagation** along that graph, two ways.  *Must-hold* (set
   intersection over all known call sites) soundly excuses a guarded-field
   mutation inside a helper that is only ever called under the guard —
   the LDP201 guard-bypass pass.  *May-hold* (set union) feeds the
   lock-order graph: an acquisition of ``B`` anywhere under ``A`` — even
   through a call chain — records the edge ``A -> B``, and any cycle in
   the resulting graph is a deadlock candidate (LDP202).
3. **Await-under-lock** detection (LDP203): an ``await`` lexically inside
   a ``with <threading lock>:`` block parks the entire event loop on a
   lock a worker thread may hold — the asyncio-era deadlock the lexical
   pass had no concept for.  Asyncio locks are exempt (awaiting under
   them is their purpose).

Functions reachable from outside the analyzed packages are treated as
having no caller-held locks (must-hold starts empty at graph roots), so
the pass errs toward reporting; the runtime detector covers what static
resolution cannot reach.  All findings are deterministic: modules are
walked in sorted order and cycle findings are sorted by (file, line,
lock pair) so ``--json`` output is byte-stable across Python versions.
"""

from __future__ import annotations

import ast
import importlib.util
import pkgutil
from dataclasses import dataclass, field

from repro.lint.concurrency import (
    _EXEMPT_METHODS,
    _mutation_targets,
    GuardSpec,
)
from repro.lint.findings import LintFinding, RULES, sort_findings

from .registry import DEFAULT_LOCKS, DEFAULT_TARGETS, EXTENDED_GUARDS, LockSpec

__all__ = ["StaticAnalysis", "analyze", "discover_modules"]


# ---------------------------------------------------------------------- #
# module loading
# ---------------------------------------------------------------------- #


def discover_modules(targets: tuple[str, ...]) -> list[str]:
    """Every analyzable module under the target packages, sorted."""
    names: set[str] = set()
    for root in targets:
        spec = importlib.util.find_spec(root)
        if spec is None:
            raise ImportError(f"cannot locate package {root!r}")
        names.add(root)
        search = spec.submodule_search_locations
        if search:
            for info in pkgutil.iter_modules(list(search)):
                sub = f"{root}.{info.name}"
                if info.ispkg:
                    names.update(discover_modules((sub,)))
                else:
                    names.add(sub)
    return sorted(names)


def _load_source(module: str) -> str:
    spec = importlib.util.find_spec(module)
    if spec is None or spec.origin is None:
        raise ImportError(f"cannot locate source for {module!r}")
    with open(spec.origin, "r", encoding="utf-8") as fh:
        return fh.read()


# ---------------------------------------------------------------------- #
# per-module index
# ---------------------------------------------------------------------- #


@dataclass
class _Module:
    name: str
    tree: ast.Module
    #: local alias -> module path (``plfs_api`` -> ``repro.plfs.api``)
    imports: dict[str, str] = field(default_factory=dict)
    #: local alias -> (module path, attribute) for ``from m import a``
    from_attrs: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: class name -> method names
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: module-level function names
    functions: set[str] = field(default_factory=set)
    #: module-global name -> class name (``_shared`` -> ``IndexCache``)
    instance_types: dict[str, str] = field(default_factory=dict)


@dataclass
class _Func:
    fq: str  # "repro.plfs.writer:WriteFile.sync"
    module: str
    cls: str  # "" for module-level functions
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool


def _package_of(module: str) -> list[str]:
    return module.split(".")[:-1]


def _index_module(name: str, source: str, known: set[str]) -> _Module:
    tree = ast.parse(source, filename=name)
    mod = _Module(name=name, tree=tree)
    # a "module" that other known modules nest under is a package, and
    # its relative imports resolve against itself, not its parent
    is_pkg = any(other.startswith(name + ".") for other in known)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mod.imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    mod.imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            parts = name.split(".") if is_pkg else _package_of(name)
            if node.level:
                base_parts = (
                    parts[: len(parts) - (node.level - 1)] if node.level > 1 else parts
                )
                base = ".".join(base_parts)
            else:
                base = ""
            target = node.module or ""
            if base and target:
                target = f"{base}.{target}"
            elif base:
                target = base
            for alias in node.names:
                local = alias.asname or alias.name
                as_module = f"{target}.{alias.name}" if target else alias.name
                if as_module in known:
                    mod.imports[local] = as_module
                elif target in known:
                    mod.from_attrs[local] = (target, alias.name)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            mod.classes[node.name] = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions.add(node.name)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target_node = node.targets[0]
            value = node.value
            if (
                isinstance(target_node, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
            ):
                mod.instance_types[target_node.id] = value.func.id
    return mod


def _collect_functions(mod: _Module) -> list[_Func]:
    out: list[_Func] = []
    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(
                _Func(
                    fq=f"{mod.name}:{node.name}",
                    module=mod.name,
                    cls="",
                    name=node.name,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append(
                        _Func(
                            fq=f"{mod.name}:{node.name}.{item.name}",
                            module=mod.name,
                            cls=node.name,
                            name=item.name,
                            node=item,
                            is_async=isinstance(item, ast.AsyncFunctionDef),
                        )
                    )
    return out


# ---------------------------------------------------------------------- #
# lexical facts gathered per function
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _CallSite:
    caller: str
    callee: str
    held: frozenset[str]


@dataclass(frozen=True)
class _Acquire:
    func: str
    lock: str
    kind: str
    held_before: frozenset[str]
    module: str
    line: int
    col: int


@dataclass(frozen=True)
class _Mutation:
    guard: GuardSpec
    func: str
    qualname: str
    held: frozenset[str]
    module: str
    line: int
    col: int


@dataclass(frozen=True)
class _AwaitSite:
    func: str
    qualname: str
    held_threading: frozenset[str]
    module: str
    line: int
    col: int


class _LockIndex:
    """Recognizes known-lock acquisition expressions."""

    def __init__(self, locks: list[LockSpec]) -> None:
        self._self_attrs: dict[tuple[str, str, str], LockSpec] = {}
        self._globals: dict[tuple[str, str], LockSpec] = {}
        self._factories: dict[tuple[str, str, str], LockSpec] = {}
        self.kinds: dict[str, str] = {}
        for spec in locks:
            self.kinds[spec.label] = spec.kind
            if spec.factory and spec.owner:
                self._factories[(spec.module, spec.owner, spec.factory)] = spec
            elif spec.owner:
                self._self_attrs[(spec.module, spec.owner, spec.attr)] = spec
            else:
                self._globals[(spec.module, spec.attr)] = spec

    def match(self, expr: ast.expr, module: str, cls: str) -> LockSpec | None:
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id == "self":
                    # self._locked(<lock>, ...) wraps the acquisition of
                    # its first argument (the daemon's accounting helper)
                    if func.attr == "_locked" and expr.args:
                        return self.match(expr.args[0], module, cls)
                    spec = self._factories.get((module, cls, func.attr))
                    if spec is not None:
                        return spec
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return self._self_attrs.get((module, cls, expr.attr))
        if isinstance(expr, ast.Name):
            return self._globals.get((module, expr.id))
        return None


def _resolve_call(
    call: ast.Call,
    mod: _Module,
    cls: str,
    modules: dict[str, _Module],
) -> str | None:
    """Fully-qualified callee of *call*, or None when unresolvable.

    Resolution is conservative by design: ``self`` methods, module-level
    functions, import aliases, and module-global instances.  A call we
    cannot pin to a definition contributes no edge (never a guessed one).
    """
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in mod.from_attrs:
            target_mod, attr = mod.from_attrs[name]
            target = modules.get(target_mod)
            if target is not None:
                if attr in target.functions:
                    return f"{target_mod}:{attr}"
                if attr in target.classes and "__init__" in target.classes[attr]:
                    return f"{target_mod}:{attr}.__init__"
            return None
        if name in mod.functions:
            return f"{mod.name}:{name}"
        if name in mod.classes and "__init__" in mod.classes[name]:
            return f"{mod.name}:{name}.__init__"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name):
        rid = receiver.id
        if rid == "self" and cls:
            if func.attr in mod.classes.get(cls, set()):
                return f"{mod.name}:{cls}.{func.attr}"
            return None
        if rid in mod.imports:
            target_mod = mod.imports[rid]
            target = modules.get(target_mod)
            if target is not None and func.attr in target.functions:
                return f"{target_mod}:{func.attr}"
            return None
        if rid in mod.instance_types:
            cls_name = mod.instance_types[rid]
            if func.attr in mod.classes.get(cls_name, set()):
                return f"{mod.name}:{cls_name}.{func.attr}"
        return None
    return None


class _FunctionScan:
    def __init__(
        self,
        fi: _Func,
        mod: _Module,
        modules: dict[str, _Module],
        locks: _LockIndex,
        guards: list[GuardSpec],
    ) -> None:
        self.fi = fi
        self.mod = mod
        self.modules = modules
        self.locks = locks
        self.guards = guards
        self.calls: list[_CallSite] = []
        self.acquires: list[_Acquire] = []
        self.mutations: list[_Mutation] = []
        self.awaits: list[_AwaitSite] = []
        self._guards_cache: list[GuardSpec] = []

    def run(self) -> None:
        self._guards_cache = self._applicable_guards()
        for stmt in self.fi.node.body:
            self._walk(stmt, ())

    def _applicable_guards(self) -> list[GuardSpec]:
        out: list[GuardSpec] = []
        for guard in self.guards:
            if guard.module != self.mod.name:
                continue
            if guard.owner:
                if (
                    guard.owner == self.fi.cls
                    and self.fi.name not in _EXEMPT_METHODS
                ):
                    out.append(guard)
            else:
                declares = any(
                    isinstance(n, ast.Global) and guard.field in n.names
                    for n in ast.walk(self.fi.node)
                )
                if declares:
                    out.append(guard)
        return out

    def _record_facts(self, node: ast.AST, held: tuple[str, ...]) -> None:
        held_set = frozenset(held)
        if isinstance(node, ast.Call):
            callee = _resolve_call(node, self.mod, self.fi.cls, self.modules)
            if callee is not None:
                self.calls.append(_CallSite(self.fi.fq, callee, held_set))
        if isinstance(node, ast.Await):
            threading_held = frozenset(
                label
                for label in held
                if self.locks.kinds.get(label) == "threading"
            )
            self.awaits.append(
                _AwaitSite(
                    func=self.fi.fq,
                    qualname=self._qualname(),
                    held_threading=threading_held,
                    module=self.mod.name,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
        for guard in self._guards_cache:
            for target in _mutation_targets(node, guard):
                self.mutations.append(
                    _Mutation(
                        guard=guard,
                        func=self.fi.fq,
                        qualname=self._qualname(),
                        held=held_set,
                        module=self.mod.name,
                        line=getattr(target, "lineno", node.lineno),
                        col=getattr(target, "col_offset", node.col_offset),
                    )
                )

    def _qualname(self) -> str:
        return f"{self.fi.cls}.{self.fi.name}" if self.fi.cls else self.fi.name

    def _walk(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes run at another time, under other locks
        self._record_facts(node, held)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                spec = self.locks.match(item.context_expr, self.mod.name, self.fi.cls)
                if spec is not None:
                    self.acquires.append(
                        _Acquire(
                            func=self.fi.fq,
                            lock=spec.label,
                            kind=spec.kind,
                            held_before=frozenset(held) | frozenset(acquired),
                            module=self.mod.name,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
                    acquired.append(spec.label)
                self._walk_children(item.context_expr, held)
                if item.optional_vars is not None:
                    self._walk_children(item.optional_vars, held)
            inner = held + tuple(acquired)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        self._walk_children(node, held)

    def _walk_children(self, node: ast.AST, held: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)


# ---------------------------------------------------------------------- #
# the analysis
# ---------------------------------------------------------------------- #


@dataclass
class StaticAnalysis:
    """Everything the interprocedural pass learned, findings included."""

    findings: list[LintFinding]
    modules: list[str]
    functions: int
    call_edges: int
    lock_edges: list[tuple[str, str]]

    def summary(self) -> dict:
        return {
            "modules": len(self.modules),
            "functions": self.functions,
            "call_edges": self.call_edges,
            "lock_edges": len(self.lock_edges),
            "findings": len(self.findings),
        }


def _must_held(
    funcs: list[_Func], calls: list[_CallSite], all_locks: frozenset[str]
) -> dict[str, frozenset[str]]:
    """Locks held at *every* known call site, propagated transitively.

    Functions with no internal caller are graph roots (assumed called with
    nothing held).  Everything else starts at ⊤ and is intersected down to
    a fixpoint; cycles converge because the meet only shrinks the set.
    """
    in_edges: dict[str, list[_CallSite]] = {}
    for site in calls:
        in_edges.setdefault(site.callee, []).append(site)
    must: dict[str, frozenset[str]] = {
        f.fq: (all_locks if f.fq in in_edges else frozenset()) for f in funcs
    }
    changed = True
    while changed:
        changed = False
        for fq, sites in in_edges.items():
            new = frozenset(all_locks)
            for site in sites:
                new &= site.held | must.get(site.caller, frozenset())
            if new != must.get(fq):
                must[fq] = new
                changed = True
    return must


def _may_held(
    funcs: list[_Func], calls: list[_CallSite]
) -> dict[str, frozenset[str]]:
    """Locks possibly held at some call site, propagated transitively."""
    may: dict[str, set[str]] = {f.fq: set() for f in funcs}
    changed = True
    while changed:
        changed = False
        for site in calls:
            if site.callee not in may:
                continue
            incoming = site.held | frozenset(may.get(site.caller, set()))
            if not incoming <= may[site.callee]:
                may[site.callee] |= incoming
                changed = True
    return {fq: frozenset(held) for fq, held in may.items()}


def _sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan strongly-connected components, deterministic order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    out: list[list[str]] = []

    def strong(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp: list[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(sorted(comp))
    for v in sorted(graph):
        if v not in index:
            strong(v)
    return out


def _finding(
    rule_id: str,
    module: str,
    line: int,
    col: int,
    detail: str,
    **evidence: object,
) -> LintFinding:
    spec = RULES[rule_id]
    return LintFinding(
        rule=spec.rule_id,
        name=spec.name,
        severity=spec.severity,
        file=module,
        line=line,
        col=col,
        detail=detail,
        recommendation=spec.recommendation,
        evidence={k: evidence[k] for k in sorted(evidence)},
    )


def analyze(
    targets: tuple[str, ...] | None = None,
    *,
    guards: list[GuardSpec] | None = None,
    locks: list[LockSpec] | None = None,
    sources: dict[str, str] | None = None,
) -> StaticAnalysis:
    """Run the whole-system static lock analysis.

    *sources* maps module name -> source text, overriding (or standing in
    for) on-disk modules — how the regression tests seed guard bypasses
    and lock-order inversions without touching the tree.
    """
    targets = DEFAULT_TARGETS if targets is None else targets
    guards = EXTENDED_GUARDS if guards is None else guards
    locks = DEFAULT_LOCKS if locks is None else locks
    sources = sources or {}

    names: set[str] = set(sources)
    for root in targets:
        if root in sources:
            names.add(root)
        else:
            names.update(discover_modules((root,)))
    module_names = sorted(names)
    modules: dict[str, _Module] = {}
    for name in module_names:
        source = sources[name] if name in sources else _load_source(name)
        modules[name] = _index_module(name, source, set(module_names))

    lock_index = _LockIndex(locks)
    all_funcs: list[_Func] = []
    calls: list[_CallSite] = []
    acquires: list[_Acquire] = []
    mutations: list[_Mutation] = []
    awaits: list[_AwaitSite] = []
    for name in module_names:
        mod = modules[name]
        for fi in _collect_functions(mod):
            all_funcs.append(fi)
            scan = _FunctionScan(fi, mod, modules, lock_index, guards)
            scan.run()
            calls.extend(scan.calls)
            acquires.extend(scan.acquires)
            mutations.extend(scan.mutations)
            awaits.extend(scan.awaits)

    all_labels = frozenset(lock_index.kinds)
    must = _must_held(all_funcs, calls, all_labels)
    may = _may_held(all_funcs, calls)

    findings: list[LintFinding] = []

    # -- LDP201: guard bypass, interprocedural ------------------------- #
    for mut in sorted(
        mutations, key=lambda m: (m.module, m.line, m.col, m.qualname)
    ):
        guard_lock = _guard_label(mut.guard)
        effective = mut.held | must.get(mut.func, frozenset())
        if guard_lock not in effective:
            scope = f"{mut.guard.owner}." if mut.guard.owner else ""
            findings.append(
                _finding(
                    "LDP201",
                    mut.module,
                    mut.line,
                    mut.col,
                    (
                        f"{mut.qualname} mutates {scope}{mut.guard.field} "
                        f"without {guard_lock} held on any path to this "
                        "statement (checked lexically and through every "
                        "resolved caller)"
                    ),
                    field=mut.guard.field,
                    function=mut.qualname,
                    guard=guard_lock,
                    held=",".join(sorted(effective)) or "(none)",
                )
            )

    # -- LDP202: lock-order graph + deadlock cycles -------------------- #
    edge_sites: dict[tuple[str, str], tuple[str, int, int]] = {}
    for acq in acquires:
        # lexically-held locks plus anything a resolved caller may hold
        outer_set = acq.held_before | may.get(acq.func, frozenset())
        for outer in outer_set:
            if outer == acq.lock:
                continue
            site = (acq.module, acq.line, acq.col)
            key = (outer, acq.lock)
            if key not in edge_sites or site < edge_sites[key]:
                edge_sites[key] = site
    graph: dict[str, set[str]] = {}
    for outer, inner in edge_sites:
        graph.setdefault(outer, set()).add(inner)
        graph.setdefault(inner, set())
    cycle_findings: list[LintFinding] = []
    for comp in _sccs(graph):
        in_cycle = len(comp) > 1 or (
            comp and comp[0] in graph.get(comp[0], set())
        )
        if not in_cycle:
            continue
        comp_edges = sorted(
            (pair, site)
            for pair, site in edge_sites.items()
            if pair[0] in comp and pair[1] in comp
        )
        module, line, col = min(site for _, site in comp_edges)
        cycle = " -> ".join(comp + [comp[0]])
        cycle_findings.append(
            _finding(
                "LDP202",
                module,
                line,
                col,
                (
                    f"locks {', '.join(comp)} form an acquisition cycle "
                    f"({cycle}); two tasks taking the paths in opposite "
                    "order deadlock"
                ),
                cycle=cycle,
                locks=",".join(comp),
                sites=";".join(
                    f"{pair[0]}->{pair[1]}@{site[0]}:{site[1]}"
                    for pair, site in comp_edges
                ),
            )
        )
    cycle_findings.sort(key=lambda f: (f.file, f.line, str(f.evidence["locks"])))
    findings.extend(cycle_findings)

    # -- LDP203: await while holding a threading lock ------------------ #
    for aw in sorted(awaits, key=lambda a: (a.module, a.line, a.col)):
        if aw.held_threading:
            locks_held = ", ".join(sorted(aw.held_threading))
            findings.append(
                _finding(
                    "LDP203",
                    aw.module,
                    aw.line,
                    aw.col,
                    (
                        f"{aw.qualname} awaits while holding {locks_held}: "
                        "the event loop parks with the thread lock held, "
                        "and any worker thread contending for it deadlocks "
                        "the loop"
                    ),
                    function=aw.qualname,
                    locks=locks_held,
                )
            )

    lock_edges = sorted(edge_sites)
    return StaticAnalysis(
        findings=sort_findings(findings),
        modules=module_names,
        functions=len(all_funcs),
        call_edges=len(calls),
        lock_edges=lock_edges,
    )


def _guard_label(guard: GuardSpec) -> str:
    from .registry import lock_from_guard

    return lock_from_guard(guard).label
