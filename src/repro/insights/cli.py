"""``repro-insights`` — characterise a run and report detected issues.

Simulates one of the paper's workloads at the requested scale, builds an
:class:`~repro.insights.metrics.IORunProfile` from the run's observed
counters, runs the rule engine and prints the report::

    repro-insights --workload flashio --machine sierra --method LDPLFS \
        --nodes 256
    repro-insights --workload bt --machine sierra --method MPI-IO \
        --cores 1024 --bt-class C --json
    repro-insights --workload mpiio-test --machine minerva \
        --method MPI-IO --nodes 16 --ppn 1 --advise
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.machine import MACHINES
from repro.mpiio.methods import BY_NAME
from repro.workloads import run_bt, run_flashio, run_mpiio_test

from .metrics import profile_from_run
from .reporter import render_report, report_to_json
from .rules import run_rules

WORKLOADS = ("flashio", "bt", "mpiio-test")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-insights",
        description=(
            "Drishti-style I/O characterisation and advisory for the "
            "simulated LDPLFS platforms"
        ),
    )
    parser.add_argument("--workload", choices=WORKLOADS, default="flashio")
    parser.add_argument(
        "--machine", choices=sorted(MACHINES), default="sierra"
    )
    parser.add_argument(
        "--method", choices=sorted(BY_NAME), default="LDPLFS"
    )
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--ppn", type=int, default=12)
    parser.add_argument(
        "--cores", type=int, default=None, help="BT total cores (square)"
    )
    parser.add_argument(
        "--bt-class", choices=("C", "D"), default="C", dest="bt_class"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the canonical JSON report"
    )
    parser.add_argument(
        "--advise",
        action="store_true",
        help="append the model-based method recommendation",
    )
    parser.add_argument(
        "--lint",
        metavar="SCRIPT",
        default=None,
        help=(
            "also statically lint SCRIPT (repro.lint) and merge its "
            "findings into the report as static evidence"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    machine = MACHINES[args.machine]
    method = BY_NAME[args.method]

    try:
        if args.workload == "flashio":
            result = run_flashio(machine, method, args.nodes, args.ppn)
            workload = "flashio"
        elif args.workload == "bt":
            cores = args.cores or 256
            result = run_bt(machine, method, cores, args.bt_class)
            workload = f"bt.{args.bt_class}"
        else:
            result = run_mpiio_test(machine, method, args.nodes, args.ppn)
            workload = "mpiio-test"
    except ValueError as exc:
        print(f"repro-insights: error: {exc}", file=sys.stderr)
        return 2

    profile = profile_from_run(result, machine, method, workload=workload)
    findings = run_rules(profile)

    static_findings = None
    static_evidence = None
    if args.lint is not None:
        from repro.lint import as_static_evidence, lint_path

        try:
            static_findings = lint_path(args.lint)
        except OSError as exc:
            print(f"repro-insights: error: {exc}", file=sys.stderr)
            return 2
        static_evidence = as_static_evidence(static_findings)

    if args.json:
        print(report_to_json(profile, findings, static_evidence))
    else:
        print(render_report(profile, findings))
        if static_findings is not None:
            from repro.lint import render_findings as render_lint

            print()
            print(render_lint(static_findings, target=args.lint))

    if args.advise:
        from repro.model.autotune import advise_from_profile

        rec = advise_from_profile(
            machine, profile, static_findings=static_findings
        )
        print()
        print(f"model advice: use {rec.method.name} — {rec.explanation}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
