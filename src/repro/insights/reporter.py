"""Deterministic rendering of an insights report (text and JSON).

Text output is a Drishti-style console report: a run characterisation
header, then the findings graded most severe first.  JSON output is
canonical (sorted keys, rounded floats) so two runs of the same seeded
simulation produce byte-identical reports — the property the archived
benchmark artefacts assert.
"""

from __future__ import annotations

from repro.analysis.export import canonical_json
from repro.sim.stats import MB

from .metrics import IORunProfile
from .rules import Finding, Severity


def _human_bytes(n: float) -> str:
    if n >= 1024**3:
        return f"{n / 1024 ** 3:.2f} GiB"
    if n >= 1024**2:
        return f"{n / 1024 ** 2:.2f} MiB"
    if n >= 1024:
        return f"{n / 1024:.1f} KiB"
    return f"{n:.0f} B"


def render_profile(profile: IORunProfile) -> str:
    """The characterisation header of a report."""
    p = profile
    label = " ".join(
        x for x in (p.workload, p.machine, p.method) if x
    ) or "(unlabelled run)"
    lines = [
        f"I/O insights — {label} [{p.source}]",
        (
            f"  {p.ranks} ranks on {p.nodes} node(s) x {p.ppn} ppn; "
            f"{p.writers} writer(s), {p.openers} opener(s)"
        ),
        (
            f"  wrote {_human_bytes(p.total_bytes_written)} in "
            f"{p.write_calls} calls"
            + (
                f", read {_human_bytes(p.total_bytes_read)} in "
                f"{p.read_calls} calls"
                if p.read_calls
                else ""
            )
        ),
        (
            f"  typical write {_human_bytes(p.typical_write_size)}; "
            f"small-write fraction {p.small_write_fraction:.0%} "
            f"(<= {p.small_write_threshold / MB:.0f} MB); "
            f"sequentiality {p.sequentiality:.0%}"
        ),
        (
            f"  metadata: {p.metadata_ops} ops "
            f"({p.metadata_op_rate:.0f}/GiB), "
            f"{p.dropping_creates} dropping creates, MDS x{p.mds_count} "
            f"{p.mds_utilisation:.0%} busy "
            f"(peak create depth {p.mds_peak_create_depth})"
        ),
    ]
    if p.elapsed_seconds > 0:
        lines.append(
            f"  elapsed {p.elapsed_seconds:.2f} s "
            f"-> {p.write_bandwidth_mbps:.0f} MB/s write"
        )
    if p.shared_file:
        lines.append(
            f"  shared file: lock-wait share {p.lock_wait_share:.0%}"
        )
    if p.write_size_histogram:
        hist = ", ".join(
            f"{label}: {count}"
            for label, count in p.write_size_histogram.items()
        )
        lines.append(f"  write sizes: {hist}")
    return "\n".join(lines)


def render_findings(findings: list[Finding]) -> str:
    if not findings:
        return "no issues detected — the observed pattern looks healthy"
    counts = {s: 0 for s in Severity}
    for f in findings:
        counts[f.severity] += 1
    summary = ", ".join(
        f"{counts[s]} {s.name}"
        for s in sorted(Severity, reverse=True)
        if counts[s]
    )
    blocks = [f"{len(findings)} finding(s): {summary}", ""]
    blocks.extend(f.render() for f in findings)
    return "\n".join(blocks)


def render_report(profile: IORunProfile, findings: list[Finding]) -> str:
    bar = "-" * 72
    return "\n".join(
        [render_profile(profile), bar, render_findings(findings)]
    )


def report_to_dict(
    profile: IORunProfile,
    findings: list[Finding],
    static: list[dict] | None = None,
) -> dict:
    """Report dict; *static* adds ahead-of-run lint evidence (the output
    of :func:`repro.lint.reporter.as_static_evidence`) alongside the
    observed-run findings."""
    report = {
        "profile": profile.as_dict(),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.name,
                "title": f.title,
                "detail": f.detail,
                "recommendation": f.recommendation,
                "evidence": f.evidence,
            }
            for f in findings
        ],
    }
    if static is not None:
        report["static"] = static
    return report


def report_to_json(
    profile: IORunProfile,
    findings: list[Finding],
    static: list[dict] | None = None,
) -> str:
    """Canonical JSON report (byte-identical for identical runs)."""
    return canonical_json(report_to_dict(profile, findings, static))
