"""Severity-graded I/O issue detectors (the Drishti-style rule engine).

Each detector inspects an :class:`~repro.insights.metrics.IORunProfile`
and either returns a :class:`Finding` — severity, human explanation,
actionable recommendation, and the *evidence* (the exact metric values
that triggered it) — or ``None``.  The rules are keyed to the paper's
phenomena:

- small writes funnelled through a write-through shared file (the BT
  regime of Fig. 4 → deploy PLFS via LDPLFS);
- the per-rank dropping-create storm that melts a dedicated Lustre MDS
  (the Fig. 5 collapse → PLFS harmful at this scale);
- uncollective strided writes (§II → enable ROMIO collective buffering);
- FUSE request chunking (Fig. 3's FUSE deficit → use LDPLFS instead);
- an unflattened PLFS index on a read-heavy reopen (§III.B).

Thresholds follow Drishti's conventions (fractions of operations /
utilisations, validated to lie in [0, 1]) but are tuned to the paper's
machines; override them per call if a site needs different trip points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Optional

from repro.mpiio.hints import suggest_collective_hints

from .metrics import IORunProfile


class Severity(IntEnum):
    """Graded like Drishti's report: informational → critical."""

    INFO = 1
    RECOMMEND = 2
    WARN = 3
    HIGH = 4


#: trip points (module-level so sites can tune them, Drishti-style)
THRESHOLD_SMALL_WRITES = 0.5
THRESHOLD_SMALL_WRITES_HIGH = 0.9
THRESHOLD_MDS_UTILISATION = 0.5
THRESHOLD_MDS_UTILISATION_WARN = 0.25
THRESHOLD_LOCK_WAIT = 0.25
THRESHOLD_LOCK_WAIT_HIGH = 0.5
THRESHOLD_METADATA_RATE = 500.0  # metadata ops per GiB moved
THRESHOLD_RANDOM_ACCESS = 0.5
THRESHOLD_SKEW = 3.0
#: droppings beyond which an unflattened index read noticeably hurts
THRESHOLD_INDEX_DROPPINGS = 64
#: writers per server channel beyond which stream interleaving erodes
THRESHOLD_STREAM_OVERPROVISION = 4


def validate_thresholds() -> None:
    assert 0.0 <= THRESHOLD_SMALL_WRITES <= 1.0
    assert 0.0 <= THRESHOLD_SMALL_WRITES_HIGH <= 1.0
    assert 0.0 <= THRESHOLD_MDS_UTILISATION <= 1.0
    assert 0.0 <= THRESHOLD_MDS_UTILISATION_WARN <= 1.0
    assert 0.0 <= THRESHOLD_LOCK_WAIT <= 1.0
    assert 0.0 <= THRESHOLD_RANDOM_ACCESS <= 1.0
    assert THRESHOLD_METADATA_RATE >= 0.0
    assert THRESHOLD_SKEW >= 1.0


@dataclass
class Finding:
    """One detected issue (or opportunity) with its supporting evidence."""

    rule: str
    severity: Severity
    title: str
    detail: str
    recommendation: str
    evidence: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"[{self.severity.name}] {self.rule}: {self.title}"]
        lines.append(f"  {self.detail}")
        lines.append(f"  -> {self.recommendation}")
        if self.evidence:
            ev = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(self.evidence.items())
            )
            lines.append(f"  evidence: {ev}")
        return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, bool):
        return str(v).lower()
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


Detector = Callable[[IORunProfile], Optional[Finding]]


# ---------------------------------------------------------------------- #
# detectors
# ---------------------------------------------------------------------- #


def detect_small_writes_shared_file(p: IORunProfile) -> Optional[Finding]:
    """Small writes on a write-through shared file — the Fig. 4 regime.

    A shared file never keeps its pages dirty (conflicting extent locks
    revoke them), so every small write pays the full backend round trip.
    PLFS's per-process logs are lock-free and cache-absorbable: this is
    the configuration where the paper measures up to ~20x from PLFS, and
    LDPLFS delivers it without rebuilding the application.
    """
    if p.uses_plfs or not p.shared_file or p.write_calls == 0:
        return None
    if p.small_write_fraction < THRESHOLD_SMALL_WRITES:
        return None
    severity = (
        Severity.HIGH
        if p.small_write_fraction >= THRESHOLD_SMALL_WRITES_HIGH
        and p.write_through_shared
        else Severity.RECOMMEND
    )
    return Finding(
        rule="small-writes-shared-file",
        severity=severity,
        title="small writes dominate a write-through shared file",
        detail=(
            f"{p.small_write_fraction:.0%} of {p.write_calls} write calls are at or "
            f"below {p.small_write_threshold / 1024:.0f} KB on a shared file; "
            "extent-lock revocation makes these writes synchronous."
        ),
        recommendation=(
            "use PLFS via LDPLFS: per-process log droppings need no "
            "inter-client locks and small appends are absorbed by the "
            "client write-back cache (no relink or code change needed)"
        ),
        evidence={
            "small_write_fraction": p.small_write_fraction,
            "small_write_threshold": p.small_write_threshold,
            "typical_write_size": p.typical_write_size,
            "write_calls": p.write_calls,
            "lock_wait_share": p.lock_wait_share,
        },
    )


def detect_mds_create_storm(p: IORunProfile) -> Optional[Finding]:
    """Per-rank dropping creates melting a dedicated MDS — the Fig. 5 cliff."""
    if not p.uses_plfs or not p.mds_dedicated or p.dropping_creates == 0:
        return None
    if p.mds_utilisation < THRESHOLD_MDS_UTILISATION_WARN:
        return None
    severity = (
        Severity.HIGH
        if p.mds_utilisation >= THRESHOLD_MDS_UTILISATION
        else Severity.WARN
    )
    return Finding(
        rule="mds-create-storm",
        severity=severity,
        title="PLFS harmful: dedicated-MDS create storm",
        detail=(
            f"{p.dropping_creates} dropping creates from {p.writers} writers "
            f"funnel through {p.mds_count} metadata server(s); the MDS was "
            f"{p.mds_utilisation:.0%} busy with a peak of "
            f"{p.mds_peak_create_depth} concurrent creates — the regime where "
            "the paper measures PLFS collapsing below plain MPI-IO."
        ),
        recommendation=(
            "disable PLFS at this scale (fall back to plain MPI-IO), cap the "
            "writer count, or move the container to a file system with "
            "distributed metadata (GPFS-style), where the paper notes the "
            "decrease may not materialise"
        ),
        evidence={
            "dropping_creates": p.dropping_creates,
            "writers": p.writers,
            "mds_count": p.mds_count,
            "mds_utilisation": p.mds_utilisation,
            "mds_peak_create_depth": p.mds_peak_create_depth,
            "mds_dedicated": p.mds_dedicated,
        },
    )


def detect_uncollective_strided_writes(p: IORunProfile) -> Optional[Finding]:
    """Every rank writing its own strided piece with no aggregation (§II)."""
    if p.collective or not p.strided_independent or p.ranks <= 1:
        return None
    hints = suggest_collective_hints(p.nodes, p.typical_write_size * p.ppn)
    return Finding(
        rule="uncollective-strided-writes",
        severity=Severity.RECOMMEND,
        title="independent strided writes bypass collective buffering",
        detail=(
            f"{p.ranks} ranks issue {p.write_calls} independent writes of "
            f"~{p.typical_write_size / 1024:.0f} KB at interleaved offsets; "
            "two-phase collective buffering would aggregate each node's data "
            "into one large well-formed write."
        ),
        recommendation=(
            "use collective MPI-IO calls with ROMIO collective buffering "
            f"(romio_cb_write=enable, cb_nodes={hints.cb_nodes}, "
            f"cb_buffer_size={int(hints.cb_buffer_size)})"
        ),
        evidence={
            "ranks": p.ranks,
            "write_calls": p.write_calls,
            "typical_write_size": p.typical_write_size,
            "suggested_cb_nodes": hints.cb_nodes,
            "suggested_cb_buffer_size": hints.cb_buffer_size,
        },
    )


def detect_fuse_request_chunking(p: IORunProfile) -> Optional[Finding]:
    """FUSE splitting large requests into max_write chunks (Fig. 3)."""
    if not p.fuse_transport or p.fuse_max_write <= 0:
        return None
    if p.typical_write_size <= p.fuse_max_write:
        return None
    chunks = int(p.typical_write_size // p.fuse_max_write) + (
        1 if p.typical_write_size % p.fuse_max_write else 0
    )
    return Finding(
        rule="fuse-request-chunking",
        severity=Severity.WARN,
        title="FUSE transport chunks every request",
        detail=(
            f"writes of ~{p.typical_write_size / 1024:.0f} KB cross the FUSE "
            f"mount, which splits them into {chunks} kernel requests of "
            f"{p.fuse_max_write / 1024:.0f} KB each — double user/kernel "
            "crossings per chunk."
        ),
        recommendation=(
            "reach PLFS through LDPLFS (or the ROMIO driver) instead of the "
            "FUSE mount; interposition keeps requests whole"
        ),
        evidence={
            "typical_write_size": p.typical_write_size,
            "fuse_max_write": p.fuse_max_write,
            "chunks_per_call": chunks,
        },
    )


def detect_unflattened_index_reopen(p: IORunProfile) -> Optional[Finding]:
    """Read-heavy reopen paying the per-dropping global-index build (§III.B)."""
    if not p.uses_plfs or p.read_calls == 0 or p.index_rebuild_ops == 0:
        return None
    if p.writers < THRESHOLD_INDEX_DROPPINGS:
        return None
    return Finding(
        rule="unflattened-index-reopen",
        severity=Severity.RECOMMEND,
        title="reopen for read rebuilds the index from every dropping",
        detail=(
            f"the container holds ~{p.writers} index droppings; each reopen "
            f"for read performed {p.index_rebuild_ops} directory scans plus "
            "one small read per dropping to rebuild the global index."
        ),
        recommendation=(
            "flatten the index after the write phase (plfs_flatten_index) so "
            "read-heavy reopens load one contiguous index instead of "
            "scanning every dropping"
        ),
        evidence={
            "droppings": p.writers,
            "index_rebuild_ops": p.index_rebuild_ops,
            "read_calls": p.read_calls,
        },
    )


def detect_shared_file_lock_serialisation(p: IORunProfile) -> Optional[Finding]:
    """Writers queueing on a shared file's extent locks."""
    if p.uses_plfs or not p.shared_file:
        return None
    if p.lock_wait_share < THRESHOLD_LOCK_WAIT:
        return None
    severity = (
        Severity.HIGH
        if p.lock_wait_share >= THRESHOLD_LOCK_WAIT_HIGH
        else Severity.WARN
    )
    return Finding(
        rule="shared-file-lock-serialisation",
        severity=severity,
        title="shared-file extent locks serialise the writers",
        detail=(
            f"{p.writers} writers spent {p.lock_wait_share:.0%} of their time "
            "queued behind the shared file's byte-range locks instead of "
            "moving data."
        ),
        recommendation=(
            "partition the output per process — use PLFS via LDPLFS so each "
            "rank appends to its own dropping and the locks disappear"
        ),
        evidence={
            "lock_wait_share": p.lock_wait_share,
            "writers": p.writers,
        },
    )


def detect_metadata_heavy(p: IORunProfile) -> Optional[Finding]:
    """Metadata operations out of proportion to data moved."""
    if p.metadata_ops < 100 or p.metadata_op_rate < THRESHOLD_METADATA_RATE:
        return None
    return Finding(
        rule="metadata-heavy",
        severity=Severity.WARN,
        title="metadata operations dominate the data moved",
        detail=(
            f"{p.metadata_ops} metadata operations for "
            f"{p.total_bytes / (1024 ** 3):.2f} GiB of data "
            f"({p.metadata_op_rate:.0f} ops/GiB)."
        ),
        recommendation=(
            "batch opens/creates, keep files open across phases, or reduce "
            "the number of distinct files the run touches"
        ),
        evidence={
            "metadata_ops": p.metadata_ops,
            "metadata_op_rate": p.metadata_op_rate,
        },
    )


def detect_rank_imbalance(p: IORunProfile) -> Optional[Finding]:
    """One file (or rank's file) carrying a skewed share of the traffic."""
    if p.file_count <= 1 or p.per_file_skew < THRESHOLD_SKEW:
        return None
    return Finding(
        rule="per-file-skew",
        severity=Severity.INFO,
        title="traffic is skewed across files",
        detail=(
            f"the busiest of {p.file_count} files moved "
            f"{p.per_file_skew:.1f}x the per-file mean; stragglers gate "
            "collective phases."
        ),
        recommendation=(
            "balance data volume per process, or let aggregation (collective "
            "buffering / PLFS droppings) even the load"
        ),
        evidence={
            "per_file_skew": p.per_file_skew,
            "file_count": p.file_count,
        },
    )


def detect_random_access(p: IORunProfile) -> Optional[Finding]:
    """Non-consecutive offsets forcing positioning time on every access."""
    if p.write_calls + p.read_calls < 10:
        return None
    if p.sequentiality >= THRESHOLD_RANDOM_ACCESS:
        return None
    return Finding(
        rule="random-access-pattern",
        severity=Severity.RECOMMEND,
        title="accesses are mostly non-consecutive",
        detail=(
            f"only {p.sequentiality:.0%} of accesses continue at the previous "
            "offset; the backend pays positioning time on nearly every "
            "operation."
        ),
        recommendation=(
            "write log-structured — PLFS (via LDPLFS) turns any logical "
            "pattern into sequential per-process appends"
        ),
        evidence={
            "sequentiality": p.sequentiality,
            "accesses": p.write_calls + p.read_calls,
            "seeks": p.seeks,
        },
    )


def detect_buffered_opacity(p: IORunProfile) -> Optional[Finding]:
    """Trace files whose buffered traffic the tracer could not account."""
    if p.source != "trace" or p.buffered_opaque_files == 0:
        return None
    return Finding(
        rule="buffered-opacity",
        severity=Severity.INFO,
        title="buffered file objects with no visible I/O",
        detail=(
            f"{p.buffered_opaque_files} file(s) were opened through "
            "builtins.open but show zero accounted bytes; their I/O happened "
            "below the traced layer (or never happened)."
        ),
        recommendation=(
            "treat these files' byte counts as unknown, not zero; os-level "
            "I/O or the tracer's file-object proxy is needed for full "
            "visibility"
        ),
        evidence={"buffered_opaque_files": p.buffered_opaque_files},
    )


def detect_stream_overprovision(p: IORunProfile) -> Optional[Finding]:
    """More concurrent streams than the disk arrays can interleave well."""
    if not p.uses_plfs or p.io_servers == 0:
        return None
    channels = p.io_servers * max(p.server_concurrency, 1)
    if p.writers <= THRESHOLD_STREAM_OVERPROVISION * channels:
        return None
    return Finding(
        rule="stream-overprovision",
        severity=Severity.INFO,
        title="dropping streams oversubscribe the disk arrays",
        detail=(
            f"{p.writers} concurrent droppings share {channels} server "
            "channels; interleaving that many streams erodes each array's "
            "sequential efficiency, so bandwidth has stopped scaling with "
            "writers."
        ),
        recommendation=(
            "cap the writers per container (collective buffering with fewer "
            "aggregators) — past this point more droppings add seek cost, "
            "not bandwidth"
        ),
        evidence={
            "writers": p.writers,
            "io_servers": p.io_servers,
            "server_channels": channels,
        },
    )


def detect_fault_degraded_run(p: IORunProfile) -> Optional[Finding]:
    """The run ran degraded: injected faults fired, the shim's retry
    policy absorbed transient errors, or a metadata-service outage stalled
    the run.  Cites the fault evidence so the reader can separate "the
    storage was sick" from "the access pattern was wrong"."""
    if (
        p.injected_faults == 0
        and p.transient_retries == 0
        and p.short_write_resumes == 0
        and p.mds_outage_seconds == 0
    ):
        return None
    degraded_hard = bool(p.injected_faults or p.mds_outage_seconds)
    severity = Severity.WARN if degraded_hard else Severity.INFO
    pieces = []
    if p.injected_faults:
        per_point = ", ".join(
            f"{n}x {point}" for point, n in sorted(p.fault_points.items())
        )
        pieces.append(
            f"{p.injected_faults} fault(s) fired ({per_point or 'unattributed'})"
        )
    if p.transient_retries or p.short_write_resumes:
        pieces.append(
            f"the shim retried {p.transient_retries} transient error(s) and "
            f"resumed {p.short_write_resumes} short write(s)"
        )
    if p.mds_outage_seconds:
        pieces.append(
            f"{p.mds_outages} MDS outage(s) totalling "
            f"{p.mds_outage_seconds:.1f}s delayed "
            f"{p.mds_ops_delayed_by_outage} metadata op(s)"
        )
    return Finding(
        rule="fault-degraded-run",
        severity=severity,
        title="the run was degraded by storage faults",
        detail="; ".join(pieces) + ".",
        recommendation=(
            "treat this run's bandwidth as a lower bound, not a pattern "
            "diagnosis; run repro-fsck on containers touched by crashed "
            "writers, and open writers with write_ahead_index if torn "
            "writes must stay recoverable"
        ),
        evidence={
            "injected_faults": p.injected_faults,
            "fault_points": dict(p.fault_points),
            "transient_retries": p.transient_retries,
            "short_write_resumes": p.short_write_resumes,
            "mds_outages": p.mds_outages,
            "mds_outage_seconds": p.mds_outage_seconds,
            "mds_ops_delayed_by_outage": p.mds_ops_delayed_by_outage,
        },
    )


#: registration order is the tiebreak for equal-severity findings
ALL_RULES: list[Detector] = [
    detect_fault_degraded_run,
    detect_mds_create_storm,
    detect_small_writes_shared_file,
    detect_shared_file_lock_serialisation,
    detect_fuse_request_chunking,
    detect_uncollective_strided_writes,
    detect_unflattened_index_reopen,
    detect_random_access,
    detect_metadata_heavy,
    detect_rank_imbalance,
    detect_stream_overprovision,
    detect_buffered_opacity,
]


def run_rules(
    profile: IORunProfile, rules: list[Detector] | None = None
) -> list[Finding]:
    """Run every detector; findings sorted most severe first (stable)."""
    findings: list[Finding] = []
    for rule in rules or ALL_RULES:
        finding = rule(profile)
        if finding is not None:
            findings.append(finding)
    findings.sort(key=lambda f: -int(f.severity))
    return findings
