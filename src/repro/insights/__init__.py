"""``repro.insights`` — I/O characterisation, issue detection & advisory.

The paper's §V.A asks for a tool that "highlights systems where PLFS may
have a negative effect on performance".  This package is that tool's
observability half (Drishti-style): it unifies real traced runs and
simulated benchmark runs into one :class:`IORunProfile`, runs a rule
engine of severity-graded issue detectors keyed to the paper's
phenomena, and renders deterministic text/JSON advisory reports.

- :mod:`repro.insights.metrics` — the unified profile and its builders
- :mod:`repro.insights.rules` — the detectors (small writes, MDS create
  storm, uncollective strided writes, FUSE chunking, unflattened index…)
- :mod:`repro.insights.reporter` — deterministic text/JSON reports
- :mod:`repro.insights.cli` — the ``repro-insights`` console entry point
"""

from .metrics import (
    IORunProfile,
    attach_daemon_evidence,
    attach_fault_evidence,
    attach_read_path_evidence,
    attach_write_path_evidence,
    profile_from_run,
    profile_from_trace,
)
from .reporter import (
    render_findings,
    render_profile,
    render_report,
    report_to_dict,
    report_to_json,
)
from .rules import ALL_RULES, Finding, Severity, run_rules, validate_thresholds

__all__ = [
    "IORunProfile",
    "attach_daemon_evidence",
    "attach_fault_evidence",
    "attach_read_path_evidence",
    "attach_write_path_evidence",
    "profile_from_run",
    "profile_from_trace",
    "Finding",
    "Severity",
    "ALL_RULES",
    "run_rules",
    "validate_thresholds",
    "render_profile",
    "render_findings",
    "render_report",
    "report_to_dict",
    "report_to_json",
]
