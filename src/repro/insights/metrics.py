"""Unified I/O run characterisation: the :class:`IORunProfile`.

The profile is the single currency of the insights subsystem.  It can be
built from two very different observations of the same reality:

- :func:`profile_from_trace` — a real :class:`repro.core.trace.Tracer`
  report (the shim path: Table II style workloads run under
  interposition on a local file system);
- :func:`profile_from_run` — a simulated benchmark run's
  :class:`~repro.workloads.base.RunResult`, carrying the platform's
  operation counters and utilisations (the Fig. 3–5 workloads).

Either way the rule engine in :mod:`repro.insights.rules` sees the same
derived metrics: small-write fraction, consecutive-offset
sequentiality, metadata-op rate, shared-file lock-wait share, per-file
skew, dropping-create pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import MachineSpec
from repro.core.trace import TraceReport
from repro.fs.plfssim import DROPPING_CREATE_OPS
from repro.mpiio.methods import AccessMethod
from repro.sim.stats import GB, MB, SizeHistogram
from repro.workloads.base import RunResult

#: default "small write" threshold for trace-derived profiles (the
#: write-back-cache write-through threshold of the simulated machines)
DEFAULT_SMALL_WRITE = 4 * MB


@dataclass
class IORunProfile:
    """Everything the issue detectors need to know about one run."""

    source: str  # "trace" | "simulation"
    workload: str = ""
    machine: str = ""
    method: str = ""
    nodes: int = 1
    ppn: int = 1
    ranks: int = 1
    #: processes issuing backend writes (aggregators under collective
    #: buffering; every rank for independent I/O)
    writers: int = 1
    #: processes that opened the file (all produce PLFS metadata)
    openers: int = 1
    elapsed_seconds: float = 0.0

    # data-plane totals
    total_bytes_written: float = 0.0
    total_bytes_read: float = 0.0
    write_calls: int = 0
    read_calls: int = 0
    opens: int = 0
    closes: int = 0
    seeks: int = 0
    typical_write_size: float = 0.0
    write_size_histogram: dict[str, int] = field(default_factory=dict)
    read_size_histogram: dict[str, int] = field(default_factory=dict)

    # derived access-pattern metrics
    small_write_threshold: float = DEFAULT_SMALL_WRITE
    small_write_fraction: float = 0.0
    #: fraction of accesses at consecutive offsets (1.0 = pure log)
    sequentiality: float = 1.0
    collective: bool = True
    strided_independent: bool = False
    per_file_skew: float = 1.0
    file_count: int = 1

    # route / layout facts
    uses_plfs: bool = False
    fuse_transport: bool = False
    fuse_max_write: float = 0.0
    shared_file: bool = False
    #: shared-file writes are effectively write-through (lock revocation)
    write_through_shared: bool = True

    # metadata plane
    metadata_ops: int = 0
    metadata_op_counts: dict[str, int] = field(default_factory=dict)
    #: metadata operations per GiB of data moved
    metadata_op_rate: float = 0.0
    dropping_creates: int = 0
    mds_dedicated: bool = False
    mds_count: int = 1
    mds_utilisation: float = 0.0
    mds_busy_seconds: float = 0.0
    mds_peak_create_depth: int = 0
    index_rebuild_ops: int = 0

    # contention
    #: share of aggregate writer time spent queued on shared-file locks
    lock_wait_share: float = 0.0
    io_servers: int = 0
    server_concurrency: int = 1

    # fault / degradation evidence (repro.faults, shim retry policy,
    # simulated MDS outages)
    injected_faults: int = 0
    fault_points: dict[str, int] = field(default_factory=dict)
    transient_retries: int = 0
    short_write_resumes: int = 0
    mds_outages: int = 0
    mds_outage_seconds: float = 0.0
    mds_ops_delayed_by_outage: int = 0

    # read-path fast lane evidence (repro.plfs.cache / ReadFile counters)
    index_cache_hits: int = 0
    index_cache_misses: int = 0
    compacted_index_loads: int = 0
    read_preads: int = 0
    read_preads_coalesced: int = 0

    # write-path fast lane evidence (repro.plfs.writer WriteFile counters)
    write_appends: int = 0
    write_records_merged: int = 0
    write_index_flushes: int = 0
    wal_records: int = 0
    wal_batches: int = 0
    write_vectored_appends: int = 0
    write_zero_copy_appends: int = 0

    # collective-buffering / noncontiguous evidence (repro.collective
    # engine counters: the real-path twin of the simulated two-phase cost
    # model above — `collective`/`strided_independent` describe what the
    # workload asked for, these describe what the engine actually did)
    cb_rounds: int = 0
    cb_member_extents: int = 0
    cb_backend_writes: int = 0
    cb_backend_reads: int = 0
    cb_exchange_bytes: float = 0.0
    cb_exchange_shm_bytes: float = 0.0
    #: member extents per backend access (the two-phase win: high means
    #: many small pieces rode down in few large calls)
    cb_aggregation_ratio: float = 0.0
    listio_runs: int = 0
    ds_sieve_hits: int = 0
    ds_sieve_read_bytes: float = 0.0

    # daemon evidence (repro.plfsd server accounting: the shared-service
    # analogue of the dedicated-MDS counters above)
    daemon_clients: int = 0
    daemon_opens: int = 0
    daemon_creates: int = 0
    daemon_appends: int = 0
    daemon_reads: int = 0
    daemon_bytes_written: float = 0.0
    daemon_bytes_read: float = 0.0
    daemon_queue_wait_seconds: float = 0.0
    daemon_max_queue_wait_seconds: float = 0.0
    daemon_fds_reaped: int = 0

    # trace-only bookkeeping
    buffered_opaque_files: int = 0
    files: list[dict] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        return self.total_bytes_written + self.total_bytes_read

    @property
    def write_bandwidth_mbps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_bytes_written / MB / self.elapsed_seconds

    def as_dict(self) -> dict:
        """JSON-ready summary (canonical key order left to the dumper)."""
        return {
            "source": self.source,
            "workload": self.workload,
            "machine": self.machine,
            "method": self.method,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "ranks": self.ranks,
            "writers": self.writers,
            "openers": self.openers,
            "elapsed_seconds": self.elapsed_seconds,
            "total_bytes_written": self.total_bytes_written,
            "total_bytes_read": self.total_bytes_read,
            "write_calls": self.write_calls,
            "read_calls": self.read_calls,
            "opens": self.opens,
            "closes": self.closes,
            "seeks": self.seeks,
            "typical_write_size": self.typical_write_size,
            "write_size_histogram": self.write_size_histogram,
            "read_size_histogram": self.read_size_histogram,
            "small_write_threshold": self.small_write_threshold,
            "small_write_fraction": self.small_write_fraction,
            "sequentiality": self.sequentiality,
            "collective": self.collective,
            "strided_independent": self.strided_independent,
            "per_file_skew": self.per_file_skew,
            "file_count": self.file_count,
            "uses_plfs": self.uses_plfs,
            "fuse_transport": self.fuse_transport,
            "shared_file": self.shared_file,
            "metadata_ops": self.metadata_ops,
            "metadata_op_counts": self.metadata_op_counts,
            "metadata_op_rate": self.metadata_op_rate,
            "dropping_creates": self.dropping_creates,
            "mds_dedicated": self.mds_dedicated,
            "mds_count": self.mds_count,
            "mds_utilisation": self.mds_utilisation,
            "mds_peak_create_depth": self.mds_peak_create_depth,
            "index_rebuild_ops": self.index_rebuild_ops,
            "lock_wait_share": self.lock_wait_share,
            "io_servers": self.io_servers,
            "injected_faults": self.injected_faults,
            "fault_points": self.fault_points,
            "transient_retries": self.transient_retries,
            "short_write_resumes": self.short_write_resumes,
            "mds_outages": self.mds_outages,
            "mds_outage_seconds": self.mds_outage_seconds,
            "mds_ops_delayed_by_outage": self.mds_ops_delayed_by_outage,
            "index_cache_hits": self.index_cache_hits,
            "index_cache_misses": self.index_cache_misses,
            "compacted_index_loads": self.compacted_index_loads,
            "read_preads": self.read_preads,
            "read_preads_coalesced": self.read_preads_coalesced,
            "write_appends": self.write_appends,
            "write_records_merged": self.write_records_merged,
            "write_index_flushes": self.write_index_flushes,
            "wal_records": self.wal_records,
            "wal_batches": self.wal_batches,
            "write_vectored_appends": self.write_vectored_appends,
            "write_zero_copy_appends": self.write_zero_copy_appends,
            "cb_rounds": self.cb_rounds,
            "cb_member_extents": self.cb_member_extents,
            "cb_backend_writes": self.cb_backend_writes,
            "cb_backend_reads": self.cb_backend_reads,
            "cb_exchange_bytes": self.cb_exchange_bytes,
            "cb_exchange_shm_bytes": self.cb_exchange_shm_bytes,
            "cb_aggregation_ratio": self.cb_aggregation_ratio,
            "listio_runs": self.listio_runs,
            "ds_sieve_hits": self.ds_sieve_hits,
            "ds_sieve_read_bytes": self.ds_sieve_read_bytes,
            "daemon_clients": self.daemon_clients,
            "daemon_opens": self.daemon_opens,
            "daemon_creates": self.daemon_creates,
            "daemon_appends": self.daemon_appends,
            "daemon_reads": self.daemon_reads,
            "daemon_bytes_written": self.daemon_bytes_written,
            "daemon_bytes_read": self.daemon_bytes_read,
            "daemon_queue_wait_seconds": self.daemon_queue_wait_seconds,
            "daemon_max_queue_wait_seconds": self.daemon_max_queue_wait_seconds,
            "daemon_fds_reaped": self.daemon_fds_reaped,
            "buffered_opaque_files": self.buffered_opaque_files,
            "write_bandwidth_mbps": self.write_bandwidth_mbps,
        }


def attach_fault_evidence(
    profile: IORunProfile,
    *,
    events=None,
    shim_stats: dict | None = None,
) -> IORunProfile:
    """Fold fault evidence into *profile* (returns it for chaining).

    *events* is an iterable of fired fault events (anything with ``point``
    attributes — e.g. :class:`repro.faults.injector.FaultEvent`); the
    injection points are tallied into ``fault_points``.  *shim_stats* is a
    :class:`~repro.core.shim.Shim`'s ``stats`` dict, contributing the
    retry-policy counters.  Kept decoupled from :mod:`repro.faults` so
    insights never imports the injection machinery.
    """
    if events is not None:
        points: dict[str, int] = dict(profile.fault_points)
        count = 0
        for event in events:
            point = getattr(event, "point", None) or str(event)
            points[point] = points.get(point, 0) + 1
            count += 1
        profile.fault_points = points
        profile.injected_faults += count
    if shim_stats:
        profile.transient_retries += int(shim_stats.get("transient_retries", 0))
        profile.short_write_resumes += int(
            shim_stats.get("short_write_resumes", 0)
        )
    return profile


def attach_read_path_evidence(
    profile: IORunProfile,
    *,
    cache_stats: dict | None = None,
    read_stats: dict | None = None,
) -> IORunProfile:
    """Fold read-path fast-lane counters into *profile* (returns it).

    *cache_stats* is an :class:`repro.plfs.cache.IndexCache` ``stats``
    dict; *read_stats* a :class:`repro.plfs.reader.ReadFile` ``stats``
    dict.  Decoupled the same way as :func:`attach_fault_evidence`:
    insights consumes plain counter dicts, never plfs objects.
    """
    if cache_stats:
        profile.index_cache_hits += int(cache_stats.get("hits", 0))
        profile.index_cache_misses += int(cache_stats.get("misses", 0))
        profile.compacted_index_loads += int(
            cache_stats.get("compacted_loads", 0)
        )
        profile.index_rebuild_ops += int(cache_stats.get("merged_builds", 0))
    if read_stats:
        profile.read_preads += int(read_stats.get("preads", 0))
        profile.read_preads_coalesced += int(
            read_stats.get("coalesced_slices", 0)
        )
    return profile


def attach_write_path_evidence(
    profile: IORunProfile,
    *,
    writer_stats: dict | None = None,
) -> IORunProfile:
    """Fold write-path fast-lane counters into *profile* (returns it).

    *writer_stats* is a :class:`repro.plfs.writer.WriteFile` ``stats``
    dict (appends, merge/flush counts, WAL group-commit batches, vectored
    and zero-copy appends).  Decoupled like the other evidence hooks:
    insights consumes a plain counter dict, never plfs objects.
    """
    if writer_stats:
        profile.write_appends += int(writer_stats.get("appends", 0))
        profile.write_records_merged += int(
            writer_stats.get("records_merged", 0)
        )
        profile.write_index_flushes += int(
            writer_stats.get("index_flushes", 0)
        )
        profile.wal_records += int(writer_stats.get("wal_records", 0))
        profile.wal_batches += int(writer_stats.get("wal_batches", 0))
        profile.write_vectored_appends += int(
            writer_stats.get("vectored_appends", 0)
        )
        profile.write_zero_copy_appends += int(
            writer_stats.get("zero_copy_appends", 0)
        )
    return profile


def attach_daemon_evidence(
    profile: IORunProfile,
    *,
    server_stats: dict | None = None,
) -> IORunProfile:
    """Fold plfsd daemon accounting into *profile* (returns it).

    *server_stats* is a :meth:`repro.plfsd.server.PlfsdServer.stats`
    snapshot (also what the wire ``stats`` request returns): per-client
    opens/appends/bytes rolled up into an ``aggregate`` dict plus server
    ``totals``.  Queue-wait is the daemon's dedicated-MDS meltdown signal,
    so it lands next to the simulated MDS counters.  Decoupled like the
    other evidence hooks: insights consumes a plain dict, never a server.
    """
    if server_stats:
        agg = server_stats.get("aggregate", {})
        totals = server_stats.get("totals", {})
        profile.daemon_clients += int(server_stats.get("clients", 0))
        profile.daemon_opens += int(agg.get("opens", 0))
        profile.daemon_creates += int(agg.get("creates", 0))
        profile.daemon_appends += int(agg.get("appends", 0))
        profile.daemon_reads += int(agg.get("reads", 0))
        profile.daemon_bytes_written += float(agg.get("bytes_written", 0))
        profile.daemon_bytes_read += float(agg.get("bytes_read", 0))
        profile.daemon_queue_wait_seconds += float(
            agg.get("queue_wait_seconds", 0.0)
        )
        profile.daemon_max_queue_wait_seconds = max(
            profile.daemon_max_queue_wait_seconds,
            float(agg.get("max_queue_wait_seconds", 0.0)),
        )
        profile.daemon_fds_reaped += int(totals.get("fds_reaped", 0))
    return profile


def _cb_aggregation_ratio(stats: dict) -> float:
    accesses = int(stats.get("cb_backend_writes", 0)) + int(
        stats.get("cb_backend_reads", 0)
    )
    if accesses <= 0:
        return 0.0
    return int(stats.get("cb_member_extents", 0)) / accesses


def attach_collective_evidence(
    profile: IORunProfile,
    *,
    collective_stats: dict | None = None,
) -> IORunProfile:
    """Fold real-path collective engine counters into *profile* (returns it).

    *collective_stats* is a :attr:`repro.collective.CollectiveFile.counters`
    snapshot: two-phase exchange/aggregation counts plus the independent
    list-I/O and data-sieving counters.  Decoupled like the other evidence
    hooks: insights consumes a plain dict, never an engine.
    """
    if collective_stats:
        profile.cb_rounds += int(collective_stats.get("cb_rounds", 0))
        profile.cb_member_extents += int(
            collective_stats.get("cb_member_extents", 0)
        )
        profile.cb_backend_writes += int(
            collective_stats.get("cb_backend_writes", 0)
        )
        profile.cb_backend_reads += int(collective_stats.get("cb_backend_reads", 0))
        profile.cb_exchange_bytes += float(
            collective_stats.get("exchange_bytes", 0)
        )
        profile.cb_exchange_shm_bytes += float(
            collective_stats.get("exchange_shm_bytes", 0)
        )
        profile.cb_aggregation_ratio = _cb_aggregation_ratio(
            {
                "cb_member_extents": profile.cb_member_extents,
                "cb_backend_writes": profile.cb_backend_writes,
                "cb_backend_reads": profile.cb_backend_reads,
            }
        )
        profile.listio_runs += int(collective_stats.get("listio_runs", 0))
        profile.ds_sieve_hits += int(collective_stats.get("sieve_hits", 0))
        profile.ds_sieve_read_bytes += float(
            collective_stats.get("sieve_read_bytes", 0)
        )
    return profile


def export_runtime_counters(
    *,
    cache_stats: dict | None = None,
    writer_stats: dict | None = None,
    reader_stats: dict | None = None,
    server_stats: dict | None = None,
    collective_stats: dict | None = None,
) -> dict:
    """Flatten fast-lane counter dicts into one namespaced counter set.

    The inverse direction of the ``attach_*`` hooks above: instead of
    folding counters *into* an :class:`IORunProfile`, this exports them
    under the profile's field names as a flat dict — the ``counters``
    section of a :mod:`repro.bench` ``BenchRecord``.  Using one naming
    scheme in both directions keeps observed profiles, detector evidence
    and the standing benchmark trajectory directly comparable.

    Only *deterministic* counters are exported (counts, not durations):
    bench guards compare these exactly across runs of the same seed, so
    anything timing-dependent (queue-wait seconds, reaper activity) must
    travel in a record's ``timings`` section instead.
    """
    out: dict[str, int | float] = {}
    if cache_stats:
        out["index_cache_hits"] = int(cache_stats.get("hits", 0))
        out["index_cache_misses"] = int(cache_stats.get("misses", 0))
        out["compacted_index_loads"] = int(cache_stats.get("compacted_loads", 0))
        out["index_rebuild_ops"] = int(cache_stats.get("merged_builds", 0))
        out["index_cache_invalidations"] = int(cache_stats.get("invalidations", 0))
    if writer_stats:
        out["write_appends"] = int(writer_stats.get("appends", 0))
        out["write_records_merged"] = int(writer_stats.get("records_merged", 0))
        out["write_index_flushes"] = int(writer_stats.get("index_flushes", 0))
        out["wal_records"] = int(writer_stats.get("wal_records", 0))
        out["wal_batches"] = int(writer_stats.get("wal_batches", 0))
        if out["wal_batches"]:
            out["wal_batch_occupancy"] = out["wal_records"] / out["wal_batches"]
    if reader_stats:
        out["read_preads"] = int(reader_stats.get("preads", 0))
        out["read_preads_coalesced"] = int(reader_stats.get("coalesced_slices", 0))
        out["read_sieved_gap_bytes"] = int(reader_stats.get("sieved_gap_bytes", 0))
        out["read_index_builds"] = int(reader_stats.get("index_builds", 0))
        if out["read_preads"]:
            out["read_coalesce_rate"] = (
                out["read_preads_coalesced"] / out["read_preads"]
            )
    if server_stats:
        agg = server_stats.get("aggregate", {})
        out["daemon_opens"] = int(agg.get("opens", 0))
        out["daemon_creates"] = int(agg.get("creates", 0))
        out["daemon_appends"] = int(agg.get("appends", 0))
        out["daemon_reads"] = int(agg.get("reads", 0))
        out["daemon_bytes_written"] = int(agg.get("bytes_written", 0))
        out["daemon_bytes_read"] = int(agg.get("bytes_read", 0))
    if collective_stats:
        out["cb_rounds"] = int(collective_stats.get("cb_rounds", 0))
        out["cb_member_extents"] = int(collective_stats.get("cb_member_extents", 0))
        out["cb_backend_writes"] = int(collective_stats.get("cb_backend_writes", 0))
        out["cb_backend_reads"] = int(collective_stats.get("cb_backend_reads", 0))
        out["cb_exchange_messages"] = int(
            collective_stats.get("exchange_messages", 0)
        )
        out["cb_exchange_bytes"] = int(collective_stats.get("exchange_bytes", 0))
        out["cb_exchange_shm_bytes"] = int(
            collective_stats.get("exchange_shm_bytes", 0)
        )
        out["listio_runs"] = int(collective_stats.get("listio_runs", 0))
        out["listio_backend_calls"] = int(
            collective_stats.get("listio_backend_calls", 0)
        )
        out["ds_sieve_hits"] = int(collective_stats.get("sieve_hits", 0))
        out["ds_sieve_read_bytes"] = int(collective_stats.get("sieve_read_bytes", 0))
        ratio = _cb_aggregation_ratio(collective_stats)
        if ratio:
            out["cb_aggregation_ratio"] = ratio
    return out


# ---------------------------------------------------------------------- #
# simulation path
# ---------------------------------------------------------------------- #


def profile_from_run(
    result: RunResult,
    machine: MachineSpec,
    method: AccessMethod,
    *,
    workload: str = "",
) -> IORunProfile:
    """Characterise a simulated benchmark run.

    Uses the pattern details the workload recorded
    (``write_size``/``collective``/``strided``) plus the platform report
    captured at the end of the run (metadata op counts, MDS utilisation,
    lock waits, peak create depth).
    """
    perf = machine.perf
    report = result.platform_report or {}
    details = result.details
    ranks = result.nodes * result.ppn

    op_counts = dict(report.get("mds_op_counts", {}))
    dropping_creates = op_counts.get("dropping_create", 0)
    collective = bool(details.get("collective", True))
    write_size = float(details.get("write_size", 0.0))
    calls_per_rank = int(details.get("write_calls_per_rank", 0))
    write_calls = calls_per_rank * ranks

    if method.uses_plfs and dropping_creates:
        writers = dropping_creates // DROPPING_CREATE_OPS
    elif collective:
        writers = result.nodes
    else:
        writers = ranks
    openers = ranks if method.uses_plfs else 1

    hist = SizeHistogram()
    if write_calls and write_size > 0:
        hist.add(write_size, write_calls)
    header_writes = int(details.get("header_writes", 0))
    if header_writes:
        hist.add(float(details.get("header_bytes", 0.0)), header_writes)
        write_calls += header_writes

    # Sequentiality as the backend sees the byte stream: PLFS droppings
    # are pure logs; collectively buffered shared files are contiguous
    # within an aggregator's round; strided independent shared writes
    # interleave ranks at every offset.
    if method.uses_plfs:
        sequentiality = 1.0
    elif collective:
        sequentiality = 0.9
    elif details.get("strided"):
        sequentiality = 1.0 / max(ranks, 1)
    else:
        sequentiality = 0.5

    elapsed = result.write_seconds + result.read_seconds
    lock_wait = float(report.get("shared_lock_wait_seconds", 0.0))
    lock_wait_share = 0.0
    if elapsed > 0 and writers > 0:
        lock_wait_share = min(1.0, lock_wait / (elapsed * writers))

    total_gib = max(result.total_bytes / GB, 1e-12)
    mds_ops = int(report.get("mds_ops", result.mds_ops))
    index_rebuild = op_counts.get("container_readdir", 0) + op_counts.get(
        "hostdir_readdir", 0
    )

    if not workload and "class" in details:
        workload = f"bt.{details['class']}"
    return IORunProfile(
        source="simulation",
        workload=workload,
        machine=result.machine,
        method=result.method,
        nodes=result.nodes,
        ppn=result.ppn,
        ranks=ranks,
        writers=writers,
        openers=openers,
        elapsed_seconds=elapsed,
        total_bytes_written=result.total_bytes,
        total_bytes_read=result.total_bytes if result.read_seconds > 0 else 0.0,
        write_calls=write_calls,
        read_calls=write_calls if result.read_seconds > 0 else 0,
        opens=openers,
        closes=openers,
        seeks=0,
        typical_write_size=write_size,
        write_size_histogram=hist.as_dict(),
        read_size_histogram={},
        small_write_threshold=perf.cache_write_through,
        small_write_fraction=hist.fraction_at_most(perf.cache_write_through),
        sequentiality=sequentiality,
        collective=collective,
        strided_independent=bool(details.get("strided", False)),
        per_file_skew=1.0,
        file_count=1,
        uses_plfs=method.uses_plfs,
        fuse_transport=method.fuse_transport,
        fuse_max_write=perf.fuse_max_write,
        shared_file=not method.uses_plfs,
        write_through_shared=not method.uses_plfs,
        metadata_ops=mds_ops,
        metadata_op_counts=op_counts,
        metadata_op_rate=mds_ops / total_gib,
        dropping_creates=dropping_creates,
        mds_dedicated=int(report.get("mds_count", perf.mds_count)) == 1,
        mds_count=int(report.get("mds_count", perf.mds_count)),
        mds_utilisation=float(report.get("mds_utilisation", 0.0)),
        mds_busy_seconds=float(report.get("mds_busy_seconds", 0.0)),
        mds_peak_create_depth=int(
            report.get("mds_peak_create_depth", 0)
        ),
        index_rebuild_ops=index_rebuild,
        lock_wait_share=lock_wait_share,
        io_servers=int(report.get("io_servers", machine.io_servers)),
        server_concurrency=perf.server_concurrency,
        mds_outages=int(report.get("mds_outages", 0)),
        mds_outage_seconds=float(report.get("mds_outage_seconds", 0.0)),
        mds_ops_delayed_by_outage=int(
            report.get("mds_ops_delayed_by_outage", 0)
        ),
    )


# ---------------------------------------------------------------------- #
# trace path
# ---------------------------------------------------------------------- #


def profile_from_trace(
    report: TraceReport,
    *,
    small_write_threshold: float = DEFAULT_SMALL_WRITE,
    elapsed_seconds: float = 0.0,
    shared_file: bool = False,
    workload: str = "",
) -> IORunProfile:
    """Characterise a real traced run (the LDPLFS shim path).

    *shared_file* tells the detectors the traced application writes one
    file from many processes (a single tracer only sees its own process,
    so this is caller-supplied context, as Drishti takes it from the
    Darshan header).
    """
    write_hist = SizeHistogram()
    read_hist = SizeHistogram()
    opens = closes = seeks = reads = writes = 0
    bytes_read = bytes_written = 0.0
    sequential = accesses = 0
    buffered_opaque = 0
    dropping_creates = 0
    per_file: list[dict] = []
    io_time = 0.0

    for path in sorted(report.files):
        f = report.files[path]
        opens += f.opens
        closes += f.closes
        seeks += f.seeks
        reads += f.reads
        writes += f.writes
        bytes_read += f.bytes_read
        bytes_written += f.bytes_written
        write_hist.merge(f.write_sizes)
        read_hist.merge(f.read_sizes)
        sequential += f.sequential_accesses
        accesses += f.accesses
        io_time += f.read_time + f.write_time
        if f.buffered and f.accesses == 0:
            buffered_opaque += 1
        if "dropping" in path:
            dropping_creates += f.opens
        per_file.append(
            {
                "path": path,
                "opens": f.opens,
                "closes": f.closes,
                "reads": f.reads,
                "writes": f.writes,
                "seeks": f.seeks,
                "bytes_read": f.bytes_read,
                "bytes_written": f.bytes_written,
                "sequentiality": f.sequentiality,
                "buffered": f.buffered,
                "mode": f.mode,
            }
        )

    touched = [
        f for f in report.files.values() if f.bytes_read + f.bytes_written > 0
    ]
    skew = 1.0
    if len(touched) > 1:
        volumes = [f.bytes_read + f.bytes_written for f in touched]
        skew = max(volumes) / (sum(volumes) / len(volumes))

    # Metadata rate for a POSIX trace: namespace ops (opens/closes) per
    # GiB moved — the analogue of the simulator's MDS op rate.
    total_bytes = bytes_read + bytes_written
    meta_ops = opens + closes
    meta_rate = meta_ops / max(total_bytes / GB, 1e-12)

    return IORunProfile(
        source="trace",
        workload=workload,
        elapsed_seconds=elapsed_seconds or io_time,
        total_bytes_written=bytes_written,
        total_bytes_read=bytes_read,
        write_calls=writes,
        read_calls=reads,
        opens=opens,
        closes=closes,
        seeks=seeks,
        typical_write_size=bytes_written / writes if writes else 0.0,
        write_size_histogram=write_hist.as_dict(),
        read_size_histogram=read_hist.as_dict(),
        small_write_threshold=small_write_threshold,
        small_write_fraction=write_hist.fraction_at_most(small_write_threshold),
        sequentiality=(sequential / accesses) if accesses else 1.0,
        collective=False,
        strided_independent=False,
        per_file_skew=skew,
        file_count=len(report.files),
        shared_file=shared_file,
        write_through_shared=shared_file,
        metadata_ops=meta_ops,
        metadata_op_counts={"open": opens, "close": closes, "seek": seeks},
        metadata_op_rate=meta_rate,
        dropping_creates=dropping_creates,
        buffered_opaque_files=buffered_opaque,
        files=per_file,
    )
