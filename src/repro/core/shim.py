"""The interposed POSIX call set.

Each public method of :class:`Shim` replaces the same-named function in the
``os`` module (plus ``builtins.open``) while interposition is installed.
The dispatch rule is the paper's: a *path* operation is retargeted to PLFS
when the path resolves through the mount table; an *fd* operation is
retargeted when the descriptor has an entry in the fd lookup table;
everything else falls through to the saved original function — the
``dlsym(RTLD_NEXT)`` pass-through of the C shim.
"""

from __future__ import annotations

import errno
import io
import os
import stat as stat_module
import time
from dataclasses import dataclass, field

from repro.plfs import api as plfs_api
from repro.plfs.container import is_container, readdir_logical, rmdir_logical
from repro.plfs.errors import PlfsError

from .fdtable import FdEntry, FdTable
from .mounts import Mount, MountTable

_ACCMODE = os.O_RDONLY | os.O_WRONLY | os.O_RDWR


@dataclass(frozen=True)
class RealOS:
    """Snapshot of the original functions taken before patching."""

    open: callable
    close: callable
    read: callable
    write: callable
    pread: callable
    pwrite: callable
    lseek: callable
    dup: callable
    dup2: callable
    stat: callable
    lstat: callable
    fstat: callable
    access: callable
    unlink: callable
    rename: callable
    replace: callable
    truncate: callable
    ftruncate: callable
    fsync: callable
    mkdir: callable
    rmdir: callable
    listdir: callable
    scandir: callable
    chmod: callable
    utime: callable
    path_exists: callable
    builtins_open: callable
    sendfile: callable | None = None
    fdatasync: callable | None = None
    statvfs: callable | None = None
    fstatvfs: callable | None = None
    link: callable | None = None
    symlink: callable | None = None
    readlink: callable | None = None
    copy_file_range: callable | None = None
    readv: callable | None = None
    writev: callable | None = None
    preadv: callable | None = None
    pwritev: callable | None = None
    splice: callable | None = None

    @classmethod
    def snapshot(cls) -> "RealOS":
        import builtins

        return cls(
            open=os.open,
            close=os.close,
            read=os.read,
            write=os.write,
            pread=os.pread,
            pwrite=os.pwrite,
            lseek=os.lseek,
            dup=os.dup,
            dup2=os.dup2,
            stat=os.stat,
            lstat=os.lstat,
            fstat=os.fstat,
            access=os.access,
            unlink=os.unlink,
            rename=os.rename,
            replace=os.replace,
            truncate=os.truncate,
            ftruncate=os.ftruncate,
            fsync=os.fsync,
            mkdir=os.mkdir,
            rmdir=os.rmdir,
            listdir=os.listdir,
            scandir=os.scandir,
            chmod=os.chmod,
            utime=os.utime,
            path_exists=os.path.exists,
            builtins_open=builtins.open,
            sendfile=getattr(os, "sendfile", None),
            fdatasync=getattr(os, "fdatasync", None),
            statvfs=getattr(os, "statvfs", None),
            fstatvfs=getattr(os, "fstatvfs", None),
            link=getattr(os, "link", None),
            symlink=getattr(os, "symlink", None),
            readlink=getattr(os, "readlink", None),
            copy_file_range=getattr(os, "copy_file_range", None),
            readv=getattr(os, "readv", None),
            writev=getattr(os, "writev", None),
            preadv=getattr(os, "preadv", None),
            pwritev=getattr(os, "pwritev", None),
            splice=getattr(os, "splice", None),
        )


@dataclass
class RetryPolicy:
    """Transparent retry for transient I/O failures at the shim boundary.

    POSIX lets ``read``/``write`` fail with ``EINTR``/``EAGAIN`` or return
    short; well-written applications loop, but the whole premise of LDPLFS
    is running applications *unmodified* — so the shim absorbs what the
    application would not.  Interrupted calls are retried with exponential
    backoff (capped), and short writes are resumed until the buffer is
    fully written or a non-transient error surfaces.

    ``sleep`` is injectable so tests can assert the backoff sequence
    without waiting it out.
    """

    max_attempts: int = 5
    backoff_base: float = 0.001
    backoff_factor: float = 2.0
    backoff_max: float = 0.1
    transient_errnos: frozenset = frozenset({errno.EINTR, errno.EAGAIN})
    sleep: callable = field(default=time.sleep, repr=False)

    def delays(self) -> list[float]:
        """The backoff schedule (one delay per retry, not per attempt)."""
        out, delay = [], self.backoff_base
        for _ in range(self.max_attempts - 1):
            out.append(delay)
            delay = min(delay * self.backoff_factor, self.backoff_max)
        return out


def _enoent(path) -> OSError:
    return FileNotFoundError(errno.ENOENT, os.strerror(errno.ENOENT), path)


def _eisdir(path) -> OSError:
    return IsADirectoryError(errno.EISDIR, os.strerror(errno.EISDIR), path)


def _enotdir(path) -> OSError:
    return NotADirectoryError(errno.ENOTDIR, os.strerror(errno.ENOTDIR), path)


def _exdev(src, dst) -> OSError:
    return OSError(errno.EXDEV, os.strerror(errno.EXDEV), src, None, dst)


class Shim:
    """Implements every interposed call against one mount table."""

    def __init__(
        self,
        mount_table: MountTable,
        real: RealOS | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.mounts = mount_table
        self.real = real or RealOS.snapshot()
        self.table = FdTable(self.real)
        #: transient-error absorption for PLFS-bound I/O; pass a policy to
        #: tune it (a default one is always on: unmodified applications do
        #: not loop on EINTR themselves)
        self.retry = retry or RetryPolicy()
        #: counters used by tests and the overhead benchmarks
        self.stats = {
            "plfs_calls": 0,
            "passthrough_calls": 0,
            "transient_retries": 0,
            "short_write_resumes": 0,
            "daemon_opens": 0,
            "daemon_delegated_opens": 0,
            "daemon_fallbacks": 0,
        }
        #: one cached connection per ``daemon=`` socket path
        self._daemon_clients: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # transient-error absorption
    # ------------------------------------------------------------------ #

    def _with_retry(self, fn):
        """Run *fn*, retrying transient OSErrors per the policy."""
        policy = self.retry
        delay = policy.backoff_base
        for attempt in range(policy.max_attempts):
            try:
                return fn()
            except OSError as exc:
                if (
                    exc.errno not in policy.transient_errnos
                    or attempt == policy.max_attempts - 1
                ):
                    raise
                self.stats["transient_retries"] += 1
                policy.sleep(delay)
                delay = min(delay * policy.backoff_factor, policy.backoff_max)

    def _write_fully(self, plfs_fd, data, offset) -> int:
        """plfs_write with transient retry *and* short-write resumption:
        the application's single call either writes everything or raises."""
        view = memoryview(data)
        if view.itemsize != 1:
            view = view.cast("B") if view.contiguous else memoryview(view.tobytes())
        if len(view) == 0:
            return self._with_retry(
                lambda: plfs_api.plfs_write(plfs_fd, b"", 0, offset)
            )
        total = 0
        while total < len(view):
            chunk = view[total:]
            at = offset + total
            n = self._with_retry(
                lambda: plfs_api.plfs_write(plfs_fd, chunk, len(chunk), at)
            )
            if n <= 0:  # pragma: no cover - defensive: no-progress guard
                break
            total += n
            if total < len(view):
                self.stats["short_write_resumes"] += 1
        return total

    def _read_retry(self, plfs_fd, n, offset) -> bytes:
        return self._with_retry(lambda: plfs_api.plfs_read(plfs_fd, n, offset))

    # ------------------------------------------------------------------ #
    # resolution helpers
    # ------------------------------------------------------------------ #

    def _resolve(self, path) -> tuple[Mount, str] | None:
        if isinstance(path, int):  # fd-relative path APIs pass ints
            return None
        try:
            fspath = os.fspath(path)
        except TypeError:
            return None
        if isinstance(fspath, bytes):
            fspath = os.fsdecode(fspath)
        return self.mounts.resolve(fspath)

    def _count(self, plfs: bool) -> None:
        self.stats["plfs_calls" if plfs else "passthrough_calls"] += 1

    # ------------------------------------------------------------------ #
    # daemon routing (mounts carrying a ``daemon=socket`` option)
    # ------------------------------------------------------------------ #

    def _daemon_open(self, socket_path: str, backend: str, flags: int, mode: int):
        """Open *backend* through the plfsd daemon at *socket_path*.

        Returns a RemoteFd, or ``None`` when no daemon is reachable — the
        caller then takes the ordinary in-process path, so a mount with a
        ``daemon=`` option degrades gracefully to exactly what it was
        before the daemon existed.  Real PLFS failures from the daemon
        (ENOENT, EEXIST, ...) are NOT swallowed: the error envelope
        re-raises the same :mod:`repro.plfs.errors` class the in-process
        open would have raised.
        """
        from repro.plfsd.client import PlfsdUnavailable, connect

        client = self._daemon_clients.get(socket_path)
        accmode = flags & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR)
        delegate = accmode == os.O_WRONLY and not flags & os.O_EXCL
        try:
            if client is None or client.closed:
                client = connect(socket_path, name=f"shim-pid-{os.getpid()}")
                self._daemon_clients[socket_path] = client
            if delegate:
                # Write-only: the daemon serializes the metadata create
                # (its MDS role) and the data plane stays in-process —
                # PLFS never streams bytes through its metadata service.
                plfs_fd = client.open_delegated(backend, flags, mode)
            else:
                plfs_fd = client.open(backend, flags, mode)
        except PlfsdUnavailable:
            self._daemon_clients.pop(socket_path, None)
            self.stats["daemon_fallbacks"] += 1
            return None
        self.stats["daemon_opens"] += 1
        if delegate:
            self.stats["daemon_delegated_opens"] += 1
        return plfs_fd

    def close_daemon_clients(self) -> None:
        """Drop every cached daemon connection (uninstall/test teardown)."""
        while self._daemon_clients:
            _, client = self._daemon_clients.popitem()
            client.close()

    # ------------------------------------------------------------------ #
    # fd creation / destruction
    # ------------------------------------------------------------------ #

    def open(self, path, flags, mode=0o777, *, dir_fd=None, **kwargs):
        resolved = self._resolve(path) if dir_fd is None else None
        if resolved is None:
            self._count(False)
            return self.real.open(path, flags, mode, dir_fd=dir_fd, **kwargs)
        mount, backend = resolved
        self._count(True)

        if is_container(backend):
            pass  # logical file
        elif os.path.isdir(backend):
            # A logical directory: give the caller a real directory fd on
            # the backend so fchdir()/O_DIRECTORY users keep working.
            return self.real.open(backend, flags, mode)
        elif os.path.exists(backend):
            # Plain (non-PLFS) file living inside the backend tree.
            return self.real.open(backend, flags, mode)
        elif not flags & os.O_CREAT:
            raise _enoent(path)

        plfs_fd = None
        if mount.daemon is not None:
            try:
                plfs_fd = self._daemon_open(mount.daemon, backend, flags, mode & 0o777)
            except PlfsError as exc:
                raise type(exc)(str(exc.args[1] if len(exc.args) > 1 else exc), exc.errno) from None
        if plfs_fd is None:
            try:
                plfs_fd = plfs_api.plfs_open(backend, flags, os.getpid(), mode & 0o777)
            except PlfsError as exc:
                raise type(exc)(str(exc.args[1] if len(exc.args) > 1 else exc), exc.errno) from None
        try:
            entry = self.table.insert(plfs_fd, flags, os.fspath(path))
        except Exception:
            # A failed open must not leak the PLFS handle: release the
            # writer's droppings and the openhost marker before re-raising.
            plfs_api.plfs_close(plfs_fd)
            raise
        return entry.fd

    def close(self, fd):
        entry = self.table.remove(fd)
        if entry is None:
            self._count(False)
            return self.real.close(fd)
        self._count(True)
        try:
            plfs_api.plfs_close(entry.plfs_fd)
        finally:
            self.table.close_shadow(entry)

    def dup(self, fd):
        new_fd = self.real.dup(fd)
        entry = self.table.lookup(fd)
        if entry is not None:
            self.table.dup(entry, new_fd)
            self._count(True)
        else:
            self._count(False)
        return new_fd

    def dup2(self, fd, fd2, inheritable=True):
        if fd == fd2:
            return fd2
        old = self.table.remove(fd2)
        if old is not None:
            # fd2 referenced a PLFS file: release that reference first.
            plfs_api.plfs_close(old.plfs_fd)
        new_fd = self.real.dup2(fd, fd2, inheritable)
        entry = self.table.lookup(fd)
        if entry is not None:
            self.table.dup(entry, new_fd)
            self._count(True)
        else:
            self._count(False)
        return new_fd

    # ------------------------------------------------------------------ #
    # cursor-based I/O (the paper's lseek-emulated file pointer)
    # ------------------------------------------------------------------ #

    def read(self, fd, n):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.read(fd, n)
        self._count(True)
        if not entry.readable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        cursor = self.table.tell(entry)
        data = self._read_retry(entry.plfs_fd, n, cursor)
        if data:
            self.table.advance(entry, len(data))
        return data

    def write(self, fd, data):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.write(fd, data)
        self._count(True)
        if not entry.writable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        if entry.append:
            offset = plfs_api.plfs_getattr(entry.plfs_fd).st_size
        else:
            offset = self.table.tell(entry)
        n = self._write_fully(entry.plfs_fd, data, offset)
        self.table.set_cursor(entry, offset + n)
        return n

    def lseek(self, fd, pos, how):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.lseek(fd, pos, how)
        self._count(True)
        if how == os.SEEK_END:
            size = plfs_api.plfs_getattr(entry.plfs_fd).st_size
            target = size + pos
            if target < 0:
                raise OSError(errno.EINVAL, os.strerror(errno.EINVAL))
            return self.table.set_cursor(entry, target)
        # SEEK_SET / SEEK_CUR validate naturally on the shadow descriptor.
        return self.real.lseek(entry.fd, pos, how)

    # ------------------------------------------------------------------ #
    # vectored I/O (scatter/gather: one call, many buffers, one cursor
    # movement — POSIX readv/writev atomicity at the logical-file level)
    # ------------------------------------------------------------------ #

    def _readv_at(self, entry, buffers, offset) -> int:
        # The buffers cover one contiguous logical span, so a single
        # plfs_read (which the read path can coalesce into few preads)
        # then scattering into the views beats one plfs_read per buffer.
        # Like _writev_at, non-byte buffers (array('i'), numpy views) are
        # cast to "B" so lengths count bytes; read targets must be filled
        # in place, so a non-contiguous view cannot fall back to a
        # tobytes() copy and the cast raises — the same contract os.readv
        # has.
        views = []
        for buf in buffers:
            v = memoryview(buf)
            if v.itemsize != 1:
                v = v.cast("B")
            views.append(v)
        want = sum(len(v) for v in views)
        if not want:
            return 0
        data = self._read_retry(entry.plfs_fd, want, offset)
        pos = 0
        for view in views:
            chunk = data[pos : pos + len(view)]
            view[: len(chunk)] = chunk
            pos += len(chunk)
            if len(chunk) < len(view):
                break
        return pos

    def _writev_at(self, entry, buffers, offset) -> int:
        # Mirror of _readv_at: the buffers cover one contiguous logical
        # span, so the whole iovec goes down as a single plfs_writev (one
        # data append, one index record) instead of one plfs_write per
        # buffer.  On a short vectored write the remaining views resume
        # from the cut point, like _write_fully does for single buffers.
        views = []
        for buf in buffers:
            v = memoryview(buf)
            if v.itemsize != 1:
                v = v.cast("B") if v.contiguous else memoryview(v.tobytes())
            views.append(v)
        want = sum(len(v) for v in views)
        if not want:
            return 0
        total = 0
        while total < want:
            remaining, skip = [], total
            for view in views:
                if skip >= len(view):
                    skip -= len(view)
                    continue
                remaining.append(view[skip:] if skip else view)
                skip = 0
            at = offset + total
            bufs = remaining
            n = self._with_retry(
                lambda: plfs_api.plfs_writev(entry.plfs_fd, bufs, at)
            )
            if n <= 0:  # pragma: no cover - defensive: no-progress guard
                break
            total += n
            if total < want:
                self.stats["short_write_resumes"] += 1
        return total

    def readv(self, fd, buffers):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.readv(fd, buffers)
        self._count(True)
        if not entry.readable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        cursor = self.table.tell(entry)
        total = self._readv_at(entry, buffers, cursor)
        if total:
            self.table.advance(entry, total)
        return total

    def writev(self, fd, buffers):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.writev(fd, buffers)
        self._count(True)
        if not entry.writable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        if entry.append:
            offset = plfs_api.plfs_getattr(entry.plfs_fd).st_size
        else:
            offset = self.table.tell(entry)
        total = self._writev_at(entry, buffers, offset)
        self.table.set_cursor(entry, offset + total)
        return total

    def preadv(self, fd, buffers, offset, flags=0):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.preadv(fd, buffers, offset, flags)
        self._count(True)
        if not entry.readable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        return self._readv_at(entry, buffers, offset)

    def pwritev(self, fd, buffers, offset, flags=0):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.pwritev(fd, buffers, offset, flags)
        self._count(True)
        if not entry.writable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        # Like pwrite: honour the explicit offset (even with O_APPEND) and
        # leave the emulated cursor untouched.
        return self._writev_at(entry, buffers, offset)

    # ------------------------------------------------------------------ #
    # positional I/O
    # ------------------------------------------------------------------ #

    def pread(self, fd, n, offset):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.pread(fd, n, offset)
        self._count(True)
        if not entry.readable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        return self._read_retry(entry.plfs_fd, n, offset)

    def pwrite(self, fd, data, offset):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.pwrite(fd, data, offset)
        self._count(True)
        if not entry.writable:
            raise OSError(errno.EBADF, os.strerror(errno.EBADF))
        # POSIX semantics: pwrite honours the explicit offset even with
        # O_APPEND (we do not copy Linux's deviation) and never moves the
        # cursor.
        return self._write_fully(entry.plfs_fd, data, offset)

    # ------------------------------------------------------------------ #
    # fd metadata
    # ------------------------------------------------------------------ #

    def plfs_handle(self, fd):
        """The underlying PLFS handle for a shimmed fd, or ``None`` if the
        fd is pass-through.  Lets layered engines (e.g. the collective
        buffering path) take a shim-opened file onto the native PLFS API
        without reopening the container."""
        entry = self.table.lookup(fd)
        return None if entry is None else entry.plfs_fd

    def fstat(self, fd):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.fstat(fd)
        self._count(True)
        return plfs_api.plfs_getattr(entry.plfs_fd)

    def fsync(self, fd):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.fsync(fd)
        self._count(True)
        plfs_api.plfs_sync(entry.plfs_fd)

    def fdatasync(self, fd):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            if self.real.fdatasync is None:  # pragma: no cover - platform
                return self.real.fsync(fd)
            return self.real.fdatasync(fd)
        self._count(True)
        plfs_api.plfs_sync(entry.plfs_fd)

    def ftruncate(self, fd, length):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.ftruncate(fd, length)
        self._count(True)
        if not entry.writable:
            raise OSError(errno.EINVAL, os.strerror(errno.EINVAL))
        plfs_api.plfs_trunc(entry.plfs_fd, length)

    def sendfile(self, out_fd, in_fd, offset, count, *args, **kwargs):
        if self.table.lookup(out_fd) is not None or self.table.lookup(in_fd) is not None:
            # Force callers (e.g. shutil's fast-copy path) onto their
            # ordinary read/write fallback; zero-copy cannot see PLFS data.
            raise OSError(errno.EINVAL, os.strerror(errno.EINVAL))
        self._count(False)
        return self.real.sendfile(out_fd, in_fd, offset, count, *args, **kwargs)

    def copy_file_range(self, src, dst, count, offset_src=None, offset_dst=None):
        if self.table.lookup(src) is not None or self.table.lookup(dst) is not None:
            # Same story as sendfile: no in-kernel copies of PLFS data.
            raise OSError(errno.EXDEV, os.strerror(errno.EXDEV))
        self._count(False)
        return self.real.copy_file_range(src, dst, count, offset_src, offset_dst)

    def splice(self, src, dst, count, offset_src=None, offset_dst=None):
        if self.table.lookup(src) is not None or self.table.lookup(dst) is not None:
            # A PLFS fd's kernel descriptor is the shadow file; splicing it
            # would move shadow bytes, not logical data.  Refuse, forcing
            # callers onto an ordinary read/write loop the shim does see.
            raise OSError(errno.EINVAL, os.strerror(errno.EINVAL))
        self._count(False)
        return self.real.splice(src, dst, count, offset_src, offset_dst)

    def fstatvfs(self, fd):
        entry = self.table.lookup(fd)
        if entry is None:
            self._count(False)
            return self.real.fstatvfs(fd)
        self._count(True)
        # Report the backend file system's numbers: capacity questions
        # about a PLFS file are questions about where the droppings live.
        return self.real.statvfs(entry.plfs_fd.path)

    def statvfs(self, path):
        resolved = self._resolve(path)
        if resolved is None:
            self._count(False)
            return self.real.statvfs(path)
        _, backend = resolved
        self._count(True)
        probe = backend
        while not os.path.exists(probe):
            parent = os.path.dirname(probe)
            if parent == probe:
                break
            probe = parent
        return self.real.statvfs(probe)

    # ------------------------------------------------------------------ #
    # links: PLFS containers cannot be hard-linked (they are directories
    # on the backend), and logical trees carry no symlinks
    # ------------------------------------------------------------------ #

    def link(self, src, dst, **kwargs):
        if self._resolve(src) is None and self._resolve(dst) is None:
            self._count(False)
            return self.real.link(src, dst, **kwargs)
        self._count(True)
        raise OSError(errno.EPERM, os.strerror(errno.EPERM), src)

    def symlink(self, src, dst, **kwargs):
        if self._resolve(dst) is None:
            self._count(False)
            return self.real.symlink(src, dst, **kwargs)
        self._count(True)
        raise OSError(errno.EPERM, os.strerror(errno.EPERM), dst)

    def readlink(self, path, **kwargs):
        if self._resolve(path) is None:
            self._count(False)
            return self.real.readlink(path, **kwargs)
        self._count(True)
        raise OSError(errno.EINVAL, os.strerror(errno.EINVAL), path)

    # ------------------------------------------------------------------ #
    # path metadata
    # ------------------------------------------------------------------ #

    def stat(self, path, *, dir_fd=None, follow_symlinks=True):
        if isinstance(path, int):
            return self.fstat(path)
        resolved = self._resolve(path) if dir_fd is None else None
        if resolved is None:
            self._count(False)
            return self.real.stat(path, dir_fd=dir_fd, follow_symlinks=follow_symlinks)
        _, backend = resolved
        self._count(True)
        if is_container(backend):
            return plfs_api.plfs_getattr(backend)
        if os.path.exists(backend):
            return self.real.stat(backend, follow_symlinks=follow_symlinks)
        raise _enoent(path)

    def lstat(self, path, *, dir_fd=None):
        if self._resolve(path) is None or dir_fd is not None:
            self._count(False)
            return self.real.lstat(path, dir_fd=dir_fd)
        # No symlinks inside logical PLFS trees: lstat == stat.
        return self.stat(path)

    def access(self, path, amode, **kwargs):
        resolved = self._resolve(path) if not kwargs.get("dir_fd") else None
        if resolved is None:
            self._count(False)
            return self.real.access(path, amode, **kwargs)
        _, backend = resolved
        self._count(True)
        if not os.path.exists(backend):
            return False
        return self.real.access(backend, amode)

    def chmod(self, path, mode, **kwargs):
        resolved = self._resolve(path) if not kwargs.get("dir_fd") else None
        if resolved is None:
            self._count(False)
            return self.real.chmod(path, mode, **kwargs)
        _, backend = resolved
        self._count(True)
        if is_container(backend):
            from repro.plfs import constants

            with self.real.builtins_open(
                os.path.join(backend, constants.ACCESS_FILE), "w"
            ) as fh:
                fh.write(f"{stat_module.S_IMODE(mode):o}\n")
            return None
        return self.real.chmod(backend, mode)

    def utime(self, path, times=None, **kwargs):
        resolved = self._resolve(path) if not kwargs.get("dir_fd") else None
        if resolved is None:
            self._count(False)
            return self.real.utime(path, times, **kwargs)
        _, backend = resolved
        self._count(True)
        if not os.path.exists(backend):
            raise _enoent(path)
        return self.real.utime(backend, times)

    # ------------------------------------------------------------------ #
    # namespace operations
    # ------------------------------------------------------------------ #

    def unlink(self, path, *, dir_fd=None):
        resolved = self._resolve(path) if dir_fd is None else None
        if resolved is None:
            self._count(False)
            return self.real.unlink(path, dir_fd=dir_fd)
        _, backend = resolved
        self._count(True)
        if is_container(backend):
            return plfs_api.plfs_unlink(backend)
        if os.path.isdir(backend):
            raise _eisdir(path)
        if not os.path.exists(backend):
            raise _enoent(path)
        return self.real.unlink(backend)

    # os.remove is the same function object as os.unlink in CPython, but we
    # expose a distinct alias in case callers saved one of them.
    remove = unlink

    def _rename_like(self, real_fn, src, dst):
        rsrc, rdst = self._resolve(src), self._resolve(dst)
        if rsrc is None and rdst is None:
            self._count(False)
            return real_fn(src, dst)
        self._count(True)
        if rsrc is None or rdst is None:
            # Crossing the PLFS mount boundary is crossing a device.
            raise _exdev(src, dst)
        _, bsrc = rsrc
        _, bdst = rdst
        if is_container(bsrc):
            return plfs_api.plfs_rename(bsrc, bdst)
        if not os.path.exists(bsrc):
            raise _enoent(src)
        return real_fn(bsrc, bdst)

    def rename(self, src, dst, **kwargs):
        if kwargs.get("src_dir_fd") is not None or kwargs.get("dst_dir_fd") is not None:
            self._count(False)
            return self.real.rename(src, dst, **kwargs)
        return self._rename_like(self.real.rename, src, dst)

    def replace(self, src, dst, **kwargs):
        if kwargs.get("src_dir_fd") is not None or kwargs.get("dst_dir_fd") is not None:
            self._count(False)
            return self.real.replace(src, dst, **kwargs)
        return self._rename_like(self.real.replace, src, dst)

    def truncate(self, path, length):
        if isinstance(path, int):
            return self.ftruncate(path, length)
        resolved = self._resolve(path)
        if resolved is None:
            self._count(False)
            return self.real.truncate(path, length)
        _, backend = resolved
        self._count(True)
        if is_container(backend):
            return plfs_api.plfs_trunc(backend, length)
        if not os.path.exists(backend):
            raise _enoent(path)
        return self.real.truncate(backend, length)

    def mkdir(self, path, mode=0o777, *, dir_fd=None):
        resolved = self._resolve(path) if dir_fd is None else None
        if resolved is None:
            self._count(False)
            return self.real.mkdir(path, mode, dir_fd=dir_fd)
        _, backend = resolved
        self._count(True)
        return self.real.mkdir(backend, mode)

    def rmdir(self, path, *, dir_fd=None):
        resolved = self._resolve(path) if dir_fd is None else None
        if resolved is None:
            self._count(False)
            return self.real.rmdir(path, dir_fd=dir_fd)
        _, backend = resolved
        self._count(True)
        try:
            return rmdir_logical(backend)
        except PlfsError:
            raise _enotdir(path) from None

    def listdir(self, path="."):
        resolved = self._resolve(path) if not isinstance(path, int) else None
        if resolved is None:
            self._count(False)
            return self.real.listdir(path)
        _, backend = resolved
        self._count(True)
        if is_container(backend):
            raise _enotdir(path)
        if not os.path.isdir(backend):
            raise _enoent(path)
        return readdir_logical(backend)

    def scandir(self, path="."):
        resolved = self._resolve(path) if not isinstance(path, int) else None
        if resolved is None:
            self._count(False)
            return self.real.scandir(path)
        _, backend = resolved
        self._count(True)
        logical_root = os.fspath(path)
        return _PlfsScandirIterator(self, logical_root, backend)

    # ------------------------------------------------------------------ #
    # builtins.open
    # ------------------------------------------------------------------ #

    def builtin_open(
        self,
        file,
        mode="r",
        buffering=-1,
        encoding=None,
        errors=None,
        newline=None,
        closefd=True,
        opener=None,
    ):
        if isinstance(file, int) or opener is not None:
            if isinstance(file, int) and self.table.lookup(file) is not None:
                return self._wrap_fd(file, mode, buffering, encoding, errors, newline, closefd)
            self._count(False)
            return self.real.builtins_open(
                file, mode, buffering, encoding, errors, newline, closefd, opener
            )
        resolved = self._resolve(file)
        if resolved is None:
            self._count(False)
            return self.real.builtins_open(
                file, mode, buffering, encoding, errors, newline, closefd, opener
            )
        self._count(True)
        flags = _mode_to_flags(mode)
        fd = self.open(file, flags, 0o666)
        try:
            return self._wrap_fd(fd, mode, buffering, encoding, errors, newline, True)
        except Exception:
            self.close(fd)
            raise

    def _wrap_fd(self, fd, mode, buffering, encoding, errors, newline, closefd):
        binary = "b" in mode
        readable = any(c in mode for c in "r+") or "+" in mode
        writable = any(c in mode for c in "wax") or "+" in mode
        raw = _PlfsRawIO(self, fd, readable=readable, writable=writable, closefd=closefd)
        if buffering == 0:
            if not binary:
                raise ValueError("can't have unbuffered text I/O")
            return raw
        buffer_size = io.DEFAULT_BUFFER_SIZE if buffering in (-1, 1) else buffering
        if readable and writable:
            buffered: io.IOBase = io.BufferedRandom(raw, buffer_size)
        elif writable:
            buffered = io.BufferedWriter(raw, buffer_size)
        else:
            buffered = io.BufferedReader(raw, buffer_size)
        if binary:
            return buffered
        line_buffering = buffering == 1
        return io.TextIOWrapper(
            buffered, encoding, errors, newline, line_buffering=line_buffering
        )


def _mode_to_flags(mode: str) -> int:
    base = mode.replace("b", "").replace("t", "").replace("U", "")
    plus = "+" in base
    base = base.replace("+", "")
    if base == "r":
        flags = os.O_RDWR if plus else os.O_RDONLY
    elif base == "w":
        flags = (os.O_RDWR if plus else os.O_WRONLY) | os.O_CREAT | os.O_TRUNC
    elif base == "a":
        flags = (os.O_RDWR if plus else os.O_WRONLY) | os.O_CREAT | os.O_APPEND
    elif base == "x":
        flags = (os.O_RDWR if plus else os.O_WRONLY) | os.O_CREAT | os.O_EXCL
    else:
        raise ValueError(f"invalid mode: {mode!r}")
    return flags


class _PlfsRawIO(io.RawIOBase):
    """Raw I/O adapter over a shimmed descriptor, so the standard library's
    buffered/text layers (and therefore ``readline``, iteration, ``with``)
    work unmodified on PLFS files."""

    def __init__(self, shim: Shim, fd: int, *, readable: bool, writable: bool, closefd: bool = True):
        self._shim = shim
        self._fd = fd
        self._readable = readable
        self._writable = writable
        self._closefd = closefd
        self.name = shim.table.lookup(fd).logical_path if shim.table.lookup(fd) else fd

    def fileno(self) -> int:
        return self._fd

    def readable(self) -> bool:
        return self._readable

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return True

    def readinto(self, b) -> int:
        data = self._shim.read(self._fd, len(b))
        n = len(data)
        b[:n] = data
        return n

    def write(self, b) -> int:
        return self._shim.write(self._fd, b)

    def seek(self, pos, whence=os.SEEK_SET) -> int:
        return self._shim.lseek(self._fd, pos, whence)

    def tell(self) -> int:
        return self._shim.lseek(self._fd, 0, os.SEEK_CUR)

    def truncate(self, size=None) -> int:
        if size is None:
            size = self.tell()
        self._shim.ftruncate(self._fd, size)
        return size

    def flush(self) -> None:
        if not self.closed and self._writable:
            self._shim.fsync(self._fd)

    def close(self) -> None:
        if not self.closed:
            try:
                # IOBase.close() flushes first, so the fd must still be
                # open when it runs; release the descriptor afterwards.
                super().close()
            finally:
                if self._closefd:
                    self._shim.close(self._fd)


class _PlfsDirEntry:
    """Minimal ``os.DirEntry`` stand-in for scandir over a mount."""

    __slots__ = ("name", "path", "_shim", "_backend")

    def __init__(self, shim: Shim, name: str, logical_dir: str, backend_dir: str):
        self.name = name
        self.path = os.path.join(logical_dir, name)
        self._shim = shim
        self._backend = os.path.join(backend_dir, name)

    def is_dir(self, *, follow_symlinks=True) -> bool:
        return os.path.isdir(self._backend) and not is_container(self._backend)

    def is_file(self, *, follow_symlinks=True) -> bool:
        return is_container(self._backend) or os.path.isfile(self._backend)

    def is_symlink(self) -> bool:
        return False

    def stat(self, *, follow_symlinks=True):
        return self._shim.stat(self.path)

    def inode(self) -> int:
        return os.stat(self._backend).st_ino

    def __fspath__(self) -> str:
        return self.path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlfsDirEntry {self.name!r}>"


class _PlfsScandirIterator:
    """Context-manager iterator matching ``os.scandir``'s protocol."""

    def __init__(self, shim: Shim, logical_dir: str, backend_dir: str):
        if is_container(backend_dir):
            raise _enotdir(logical_dir)
        if not os.path.isdir(backend_dir):
            raise _enoent(logical_dir)
        self._entries = iter(
            _PlfsDirEntry(shim, name, logical_dir, backend_dir)
            for name in readdir_logical(backend_dir)
        )

    def __iter__(self):
        return self

    def __next__(self):
        return next(self._entries)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def close(self):
        self._entries = iter(())
