"""Import-time activation: ``import repro.core.preload``.

The closest Python gets to ``LD_PRELOAD=libldplfs.so ./app``::

    LDPLFS_PRELOAD=1 LDPLFS_MOUNTS=/mnt/plfs:/scratch/backend \\
        python -c "import repro.core.preload, myapp; myapp.main()"

or site-wide via a ``.pth`` file / ``sitecustomize`` that imports this
module, after which *any* Python program on the machine transparently uses
PLFS for paths under the configured mount points.
"""

from .interpose import activate_from_environ

interposer = activate_from_environ()
