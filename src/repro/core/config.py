"""Configuration knobs for the LDPLFS interposition layer.

The C library is configured entirely through the environment (it must be:
it is injected into unmodified binaries via ``LD_PRELOAD``).  We keep the
same contract:

``LDPLFS_PRELOAD``
    When set to a truthy value, importing :mod:`repro.core.preload`
    activates interposition for the whole process — the analogue of
    ``LD_PRELOAD=libldplfs.so``.

``LDPLFS_MOUNTS``
    Comma-separated ``<mount_point>:<backend>`` pairs, e.g.
    ``/mnt/plfs:/scratch/plfs_backend``.  The backend may carry mount
    options plfsrc-style: ``/mnt/plfs:/scratch/backend?daemon=/run/plfsd.sock``
    routes opens through the ``repro-plfsd`` daemon at that socket when it
    is reachable (falling back to the in-process path when it is not).

``LDPLFS_PLFSRC``
    Path to a plfsrc-style file (``mount_point``/``backends`` directives)
    consulted when ``LDPLFS_MOUNTS`` is unset, like the C library reads
    ``~/.plfsrc`` then ``/etc/plfsrc``.
"""

from __future__ import annotations

import os

ENV_PRELOAD = "LDPLFS_PRELOAD"
ENV_MOUNTS = "LDPLFS_MOUNTS"
ENV_PLFSRC = "LDPLFS_PLFSRC"

_TRUTHY = {"1", "true", "yes", "on"}


def preload_requested(environ: dict[str, str] | None = None) -> bool:
    environ = os.environ if environ is None else environ
    return environ.get(ENV_PRELOAD, "").strip().lower() in _TRUTHY


def mounts_from_environ(environ: dict[str, str] | None = None) -> list[tuple[str, str]]:
    """Parse ``LDPLFS_MOUNTS`` into (mount_point, backend) pairs."""
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_MOUNTS, "").strip()
    pairs: list[tuple[str, str]] = []
    if not raw:
        return pairs
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        if ":" not in item:
            raise ValueError(
                f"{ENV_MOUNTS} entry {item!r} is not <mount_point>:<backend>"
            )
        mount_point, backend = item.split(":", 1)
        pairs.append((mount_point, backend))
    return pairs


def parse_plfsrc(text: str) -> list[tuple[str, str]]:
    """Parse plfsrc-style directives into (mount_point, backend) pairs.

    Recognised lines (others and ``#`` comments are ignored)::

        mount_point /mnt/plfs
        backends /scratch/plfs_backend

    A ``backends`` line binds to the most recent ``mount_point`` line, as in
    the C library's plfsrc.
    """
    pairs: list[tuple[str, str]] = []
    current_mount: str | None = None
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.replace(":", " ").split()
        if len(parts) < 2:
            continue
        key, value = parts[0], parts[1]
        if key == "mount_point":
            current_mount = value
        elif key == "backends":
            if current_mount is None:
                raise ValueError(
                    f"plfsrc line {lineno}: 'backends' before any 'mount_point'"
                )
            # Multiple backends (comma separated) are legal in plfsrc; we
            # support a single backend per mount and take the first.
            pairs.append((current_mount, value.split(",")[0]))
            current_mount = None
    return pairs


def mounts_from_plfsrc(path: str) -> list[tuple[str, str]]:
    with open(path) as fh:
        return parse_plfsrc(fh.read())


def discover_mounts(environ: dict[str, str] | None = None) -> list[tuple[str, str]]:
    """Mount pairs from the environment: ``LDPLFS_MOUNTS`` first, then the
    plfsrc file named by ``LDPLFS_PLFSRC``."""
    environ = os.environ if environ is None else environ
    pairs = mounts_from_environ(environ)
    if pairs:
        return pairs
    rc = environ.get(ENV_PLFSRC, "").strip()
    if rc and os.path.exists(rc):
        return mounts_from_plfsrc(rc)
    return []
