"""The LDPLFS file-descriptor table.

This is the first of the two book-keeping structures the paper describes
(§III.A): PLFS hands back a ``Plfs_fd`` object, but the application expects
a genuine POSIX file descriptor it can pass to ``read``/``write``/``dup``.
For every PLFS open we therefore also open a *shadow* POSIX file to reserve
a real descriptor, and keep a process-wide lookup table mapping that fd to
the ``Plfs_fd``.

The second structure is the emulated file pointer: the PLFS API is
positional, POSIX I/O is cursor-based.  Exactly as in the paper, the cursor
lives in the kernel as the shadow descriptor's file offset and is queried
and advanced with ``lseek`` (``lseek(fd, 0, SEEK_CUR)`` to read it).  This
buys ``dup`` semantics for free: duplicated descriptors share an open file
description and therefore share the cursor, just like POSIX requires.

One deliberate deviation: the paper opens ``/dev/random`` as the shadow
file; character devices do not reliably keep arbitrary seek positions, so
we shadow with an unlinked temporary file, which has full regular-file
cursor semantics and also never leaks a directory entry.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass

from repro.plfs.api import Plfs_fd


@dataclass
class FdEntry:
    """State for one application descriptor that targets PLFS."""

    fd: int
    plfs_fd: Plfs_fd
    flags: int
    logical_path: str
    #: original os functions used for cursor manipulation (never the shims)
    append: bool = False

    @property
    def writable(self) -> bool:
        acc = self.flags & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR)
        return acc in (os.O_WRONLY, os.O_RDWR)

    @property
    def readable(self) -> bool:
        acc = self.flags & (os.O_RDONLY | os.O_WRONLY | os.O_RDWR)
        return acc in (os.O_RDONLY, os.O_RDWR)


class FdTable:
    """Thread-safe fd → :class:`FdEntry` lookup table."""

    #: plfs-san registration (see repro.sanitize): field -> guarding lock
    _SANITIZE_SHARED = {"_entries": "_lock"}

    def __init__(self, real_os):
        # ``real_os`` exposes the *unpatched* os functions (open, close,
        # lseek, dup).  Using the patched ones here would recurse.
        self._real = real_os
        self._lock = threading.RLock()
        self._entries: dict[int, FdEntry] = {}

    # ------------------------------------------------------------------ #
    # shadow descriptors
    # ------------------------------------------------------------------ #

    def _open_shadow_fd(self) -> int:
        """Reserve a genuine POSIX descriptor backed by an unlinked temp
        file whose offset serves as the emulated PLFS file pointer."""
        fd, path = tempfile.mkstemp(prefix="ldplfs-shadow-")
        try:
            os.unlink(path)
        except OSError:
            pass
        return fd

    # ------------------------------------------------------------------ #
    # table operations
    # ------------------------------------------------------------------ #

    def insert(self, plfs_fd: Plfs_fd, flags: int, logical_path: str) -> FdEntry:
        fd = self._open_shadow_fd()
        try:
            entry = FdEntry(
                fd=fd,
                plfs_fd=plfs_fd,
                flags=flags,
                logical_path=logical_path,
                append=bool(flags & os.O_APPEND),
            )
            with self._lock:
                self._entries[fd] = entry
        except Exception:
            # Never strand the reserved descriptor if registration fails;
            # the caller still owns (and must release) the Plfs_fd.
            self._real.close(fd)
            raise
        return entry

    def lookup(self, fd: int) -> FdEntry | None:
        with self._lock:
            return self._entries.get(fd)

    def remove(self, fd: int) -> FdEntry | None:
        with self._lock:
            return self._entries.pop(fd, None)

    def dup(self, entry: FdEntry, new_fd: int) -> FdEntry:
        """Register *new_fd* (already duplicated from entry.fd by the shim)
        as another reference to the same PLFS handle.  The kernel-level dup
        shares the shadow offset, so the cursor is naturally shared."""
        from repro.plfs.api import plfs_ref

        dup_entry = FdEntry(
            fd=new_fd,
            plfs_fd=plfs_ref(entry.plfs_fd),
            flags=entry.flags,
            logical_path=entry.logical_path,
            append=entry.append,
        )
        with self._lock:
            self._entries[new_fd] = dup_entry
        return dup_entry

    def fds(self) -> list[int]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # cursor emulation (paper §III.A: lseek on the shadow descriptor)
    # ------------------------------------------------------------------ #

    def tell(self, entry: FdEntry) -> int:
        return self._real.lseek(entry.fd, 0, os.SEEK_CUR)

    def set_cursor(self, entry: FdEntry, offset: int) -> int:
        return self._real.lseek(entry.fd, offset, os.SEEK_SET)

    def advance(self, entry: FdEntry, delta: int) -> int:
        return self._real.lseek(entry.fd, delta, os.SEEK_CUR)

    def close_shadow(self, entry: FdEntry) -> None:
        self._real.close(entry.fd)
