"""Installing and removing the interposition — the ``LD_PRELOAD`` moment.

For a C binary the loader rebinds libc symbols once, before ``main``.  The
Python analogue is rebinding the interpreter's POSIX entry points — the
functions in :mod:`os` plus ``builtins.open`` — which unmodified Python
application code calls exactly like C code calls libc.  ``install()`` swaps
them for the :class:`~repro.core.shim.Shim` methods; ``uninstall()``
restores the originals.  Use :func:`interposed` as a scoped context
manager, or set ``LDPLFS_PRELOAD=1`` and import :mod:`repro.core.preload`
for whole-process activation with zero application changes.
"""

from __future__ import annotations

import builtins
import os
import threading
from contextlib import contextmanager

from . import config
from .mounts import MountTable
from .shim import RealOS, Shim

#: os attributes patched to same-named Shim methods.
_OS_PATCHES = [
    "open",
    "close",
    "read",
    "write",
    "readv",
    "writev",
    "pread",
    "pwrite",
    "preadv",
    "pwritev",
    "lseek",
    "dup",
    "dup2",
    "stat",
    "lstat",
    "fstat",
    "access",
    "unlink",
    "remove",
    "rename",
    "replace",
    "truncate",
    "ftruncate",
    "fsync",
    "fdatasync",
    "mkdir",
    "rmdir",
    "listdir",
    "scandir",
    "chmod",
    "utime",
    "sendfile",
    "copy_file_range",
    "splice",
    "statvfs",
    "fstatvfs",
    "link",
    "symlink",
    "readlink",
]

_install_lock = threading.RLock()
_installed: "Interposer | None" = None


class Interposer:
    """One interposition instance: a mount table plus its shim.

    Only one interposer can be installed at a time (like only one symbol
    can win the preload); installs nest via a depth counter.
    """

    def __init__(self, mounts: list[tuple[str, str]] | None = None):
        self.real = RealOS.snapshot()
        self.mount_table = MountTable(mounts)
        self.shim = Shim(self.mount_table, self.real)
        self._depth = 0
        self._saved: dict[str, object] = {}
        self._wrapped: list[tuple[object, str, object]] = []

    # ------------------------------------------------------------------ #

    def add_mount(self, mount_point: str, backend: str):
        return self.mount_table.add(mount_point, backend)

    @property
    def installed(self) -> bool:
        return self._depth > 0

    def install(self) -> "Interposer":
        global _installed
        with _install_lock:
            if _installed is not None and _installed is not self:
                raise RuntimeError(
                    "another LDPLFS interposer is already installed"
                )
            if self._depth == 0:
                self._patch()
                _installed = self
            self._depth += 1
        return self

    def uninstall(self) -> None:
        global _installed
        with _install_lock:
            if self._depth == 0:
                raise RuntimeError("interposer is not installed")
            self._depth -= 1
            if self._depth == 0:
                self._unwrap_modules()
                self._unpatch()
                self.shim.close_daemon_clients()
                _installed = None

    def __enter__(self) -> "Interposer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #

    def _patch(self) -> None:
        import io

        shim = self.shim
        # ``io.open`` is the same entry point as ``builtins.open`` but is
        # referenced directly by pathlib and parts of the stdlib; both
        # names must be rebound (they are two dynamic symbols for one
        # libc function, in ELF terms).
        self._saved = {"builtins.open": builtins.open, "io.open": io.open}
        for name in _OS_PATCHES:
            original = getattr(os, name, None)
            if original is None:  # pragma: no cover - platform dependent
                continue
            self._saved[f"os.{name}"] = original
            target = getattr(shim, "unlink" if name == "remove" else name)
            setattr(os, name, target)
        builtins.open = shim.builtin_open
        io.open = shim.builtin_open

    def _unpatch(self) -> None:
        import io

        for key, original in self._saved.items():
            namespace, attr = key.split(".", 1)
            if namespace == "os":
                setattr(os, attr, original)
            elif namespace == "io":
                io.open = original
            else:
                builtins.open = original
        self._saved = {}

    # ------------------------------------------------------------------ #

    def wrap_module(self, module) -> int:
        """Rebind *module*'s direct references to POSIX functions.

        Runtime patching of ``os`` cannot reach code that captured the
        functions at import time (``from os import open``) — the same
        blind spot ``LD_PRELOAD`` has for statically linked binaries,
        which the paper solves with the linker's ``-wrap`` option
        (§III.A).  This is the equivalent: scan the module's globals for
        objects identical to the saved originals and swap in the shims.
        Undone automatically at uninstall.  Returns the number of names
        rebound.
        """
        if not self.installed:
            raise RuntimeError("install() before wrap_module()")
        original_to_shim = {}
        for key, original in self._saved.items():
            namespace, attr = key.split(".", 1)
            if namespace == "os":
                target = "unlink" if attr == "remove" else attr
                original_to_shim[original] = getattr(self.shim, target)
            else:
                original_to_shim[original] = self.shim.builtin_open
        rebound = 0
        for name, value in list(vars(module).items()):
            try:
                shimmed = original_to_shim.get(value)
            except TypeError:  # unhashable values
                continue
            if shimmed is not None:
                setattr(module, name, shimmed)
                self._wrapped.append((module, name, value))
                rebound += 1
        return rebound

    def _unwrap_modules(self) -> None:
        for module, name, original in reversed(self._wrapped):
            setattr(module, name, original)
        self._wrapped.clear()

    def drain(self) -> None:
        """Close any PLFS descriptors the application leaked (used by the
        atexit hook of the preload path so indexes always reach disk)."""
        for fd in self.shim.table.fds():
            try:
                self.shim.close(fd)
            except OSError:  # pragma: no cover - best effort
                pass


def current() -> Interposer | None:
    """The currently installed interposer, if any."""
    return _installed


def install(mounts: list[tuple[str, str]] | None = None) -> Interposer:
    """Install a new interposer (or push a nesting level on the current
    one when *mounts* is None and one is already installed)."""
    with _install_lock:
        if _installed is not None and mounts is None:
            return _installed.install()
        interposer = Interposer(mounts)
        return interposer.install()


def uninstall() -> None:
    with _install_lock:
        if _installed is None:
            raise RuntimeError("no interposer installed")
        _installed.uninstall()


@contextmanager
def interposed(mounts: list[tuple[str, str]] | None = None):
    """Scoped interposition::

        with interposed([("/mnt/plfs", "/tmp/backend")]):
            with open("/mnt/plfs/out", "wb") as fh:   # hits PLFS
                fh.write(b"data")
    """
    interposer = install(mounts)
    try:
        yield interposer
    finally:
        interposer.uninstall()


def activate_from_environ(environ: dict[str, str] | None = None) -> Interposer | None:
    """Whole-process activation driven by the environment (the
    ``LD_PRELOAD`` equivalent).  Returns the interposer when activated."""
    environ = os.environ if environ is None else environ
    if not config.preload_requested(environ):
        return None
    mounts = config.discover_mounts(environ)
    if not mounts:
        raise RuntimeError(
            f"{config.ENV_PRELOAD} is set but no mounts are configured; "
            f"set {config.ENV_MOUNTS} or {config.ENV_PLFSRC}"
        )
    interposer = install(mounts)
    import atexit

    atexit.register(interposer.drain)
    return interposer
