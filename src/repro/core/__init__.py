"""``repro.core`` — LDPLFS: transparent POSIX→PLFS interposition.

The paper's primary contribution: a dynamically installed shim that
retargets POSIX file operations on paths under PLFS mount points to the
PLFS user-level API, with no application modification.  See
:mod:`repro.core.interpose` for activation and :mod:`repro.core.shim` for
the interposed call set.
"""

from .config import (
    ENV_MOUNTS,
    ENV_PLFSRC,
    ENV_PRELOAD,
    discover_mounts,
    mounts_from_environ,
    mounts_from_plfsrc,
    parse_plfsrc,
    preload_requested,
)
from .fdtable import FdEntry, FdTable
from .interpose import (
    Interposer,
    activate_from_environ,
    current,
    install,
    interposed,
    uninstall,
)
from .mounts import Mount, MountTable
from .shim import RealOS, RetryPolicy, Shim
from .trace import FileStats, TraceReport, Tracer, traced

__all__ = [
    "Interposer",
    "install",
    "uninstall",
    "interposed",
    "current",
    "activate_from_environ",
    "Mount",
    "MountTable",
    "Shim",
    "RealOS",
    "RetryPolicy",
    "FdTable",
    "FdEntry",
    "ENV_PRELOAD",
    "ENV_MOUNTS",
    "ENV_PLFSRC",
    "preload_requested",
    "mounts_from_environ",
    "mounts_from_plfsrc",
    "parse_plfsrc",
    "discover_mounts",
    "Tracer",
    "traced",
    "TraceReport",
    "FileStats",
]
