"""The LDPLFS mount table: logical path → PLFS backend resolution.

Every interposed POSIX call starts with the same question the C shim asks:
*does this path live under a PLFS mount point?*  If yes, the call is
retargeted at the backend container; if no, it passes through to the real
libc (here: the saved original ``os`` functions).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class Mount:
    """One ``mount_point → backend`` mapping.

    *daemon*, when set, is the unix-socket path of a ``repro-plfsd``
    instance that should own this mount's containers: opens under the
    mount route through the daemon when it is reachable and silently fall
    back to the in-process path when it is not.
    """

    mount_point: str
    backend: str
    daemon: str | None = None

    def translate(self, logical_path: str) -> str:
        """Backend physical path for *logical_path* (must be under us)."""
        rel = os.path.relpath(logical_path, self.mount_point)
        if rel == ".":
            return self.backend
        return os.path.join(self.backend, rel)


def _normalise(path) -> str:
    """Absolutise + normalise without resolving symlinks (matching how the
    C shim compares string prefixes against plfsrc mount points)."""
    fspath = os.fspath(path)
    if isinstance(fspath, bytes):
        fspath = os.fsdecode(fspath)
    return os.path.normpath(os.path.join(os.getcwd(), fspath))


class MountTable:
    """Thread-safe longest-prefix-match table of PLFS mounts."""

    #: plfs-san registration (see repro.sanitize): field -> guarding lock
    _SANITIZE_SHARED = {"_mounts": "_lock"}

    def __init__(self, pairs: list[tuple[str, str]] | None = None):
        self._lock = threading.RLock()
        self._mounts: list[Mount] = []
        for mount_point, backend in pairs or []:
            self.add(mount_point, backend)

    def add(self, mount_point: str, backend: str) -> Mount:
        mount_point = _normalise(mount_point)
        # Mount options ride on the backend spec (plfsrc-style):
        # ``/backend/dir?daemon=/run/plfsd.sock``.
        daemon: str | None = None
        raw_backend = os.fspath(backend)
        if isinstance(raw_backend, bytes):
            raw_backend = os.fsdecode(raw_backend)
        if "?" in raw_backend:
            raw_backend, _, query = raw_backend.partition("?")
            for option in query.split("&"):
                key, _, value = option.partition("=")
                if key == "daemon" and value:
                    daemon = value
                elif key:
                    raise ValueError(f"unknown mount option {key!r}")
        backend = _normalise(raw_backend)
        if mount_point == "/":
            raise ValueError("refusing to mount PLFS over '/'")
        if backend == mount_point or backend.startswith(mount_point + os.sep):
            raise ValueError(
                f"backend {backend!r} may not live under its own mount "
                f"point {mount_point!r} (infinite recursion)"
            )
        mount = Mount(mount_point, backend, daemon)
        with self._lock:
            if any(m.mount_point == mount_point for m in self._mounts):
                raise ValueError(f"duplicate mount point: {mount_point}")
            self._mounts.append(mount)
            # Longest mount point first so resolve() prefix-matches most
            # specific mounts before their parents.
            self._mounts.sort(key=lambda m: len(m.mount_point), reverse=True)
        os.makedirs(backend, exist_ok=True)
        return mount

    def remove(self, mount_point: str) -> None:
        mount_point = _normalise(mount_point)
        with self._lock:
            before = len(self._mounts)
            self._mounts = [m for m in self._mounts if m.mount_point != mount_point]
            if len(self._mounts) == before:
                raise KeyError(f"not mounted: {mount_point}")

    def clear(self) -> None:
        with self._lock:
            self._mounts.clear()

    def mounts(self) -> list[Mount]:
        with self._lock:
            return list(self._mounts)

    def find(self, path) -> Mount | None:
        """The mount containing *path*, or None."""
        p = _normalise(path)
        with self._lock:
            for mount in self._mounts:
                if p == mount.mount_point or p.startswith(mount.mount_point + os.sep):
                    return mount
        return None

    def resolve(self, path) -> tuple[Mount, str] | None:
        """(mount, backend_path) for *path* if it is under a mount."""
        mount = self.find(path)
        if mount is None:
            return None
        return mount, mount.translate(_normalise(path))

    def __len__(self) -> int:
        with self._lock:
            return len(self._mounts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MountTable({[(m.mount_point, m.backend) for m in self.mounts()]})"
