"""An I/O tracing interposer that stacks with LDPLFS.

The paper's footnote 1: "although LDPLFS makes use of the LD_PRELOAD
environmental variable ... other libraries can also make use of the
dynamic loader (by appending multiple libraries into the environmental
variable), allowing tracing tools to be used alongside LDPLFS."  This is
that tracing tool — a Darshan-style characterisation layer that records
per-file operation counts, byte totals, sizes and timings.

Because it patches the same symbols (``os.*``, ``builtins.open``) by
saving whatever is currently installed, it composes in either order:

- install the tracer *after* LDPLFS and it observes the application's
  logical I/O (calls destined for PLFS included);
- install it *before* and it observes the physical backend traffic the
  PLFS layer generates.

Use :class:`Tracer` directly or the :func:`traced` context manager::

    with interposed(mounts):
        with traced() as tracer:
            run_application()
    print(tracer.report())

Caveat (true of C tracing preloads as well, which must interpose the
stdio layer separately from the syscall layer): byte counts cover the
``os``-level calls; ``builtins.open`` file objects contribute open
counts, but their buffered reads/writes happen below the Python symbol
layer and are only visible when the underlying descriptor traffic passes
through interposed functions (as it does for PLFS-backed files whose raw
I/O the LDPLFS layer implements with ``os``-level semantics).
"""

from __future__ import annotations

import builtins
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class FileStats:
    """Accumulated statistics for one path (or descriptor lineage)."""

    path: str
    opens: int = 0
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    max_read: int = 0
    max_write: int = 0

    def observe_read(self, nbytes: int, elapsed: float) -> None:
        self.reads += 1
        self.bytes_read += nbytes
        self.read_time += elapsed
        if nbytes > self.max_read:
            self.max_read = nbytes

    def observe_write(self, nbytes: int, elapsed: float) -> None:
        self.writes += 1
        self.bytes_written += nbytes
        self.write_time += elapsed
        if nbytes > self.max_write:
            self.max_write = nbytes


@dataclass
class TraceReport:
    files: dict[str, FileStats] = field(default_factory=dict)

    @property
    def total_bytes_written(self) -> int:
        return sum(f.bytes_written for f in self.files.values())

    @property
    def total_bytes_read(self) -> int:
        return sum(f.bytes_read for f in self.files.values())

    @property
    def total_ops(self) -> int:
        return sum(f.opens + f.reads + f.writes for f in self.files.values())

    def render(self) -> str:
        lines = [
            f"{'file':40s} {'opens':>5s} {'reads':>6s} {'writes':>6s} "
            f"{'B read':>10s} {'B written':>10s}"
        ]
        for path in sorted(self.files):
            f = self.files[path]
            lines.append(
                f"{path[-40:]:40s} {f.opens:5d} {f.reads:6d} {f.writes:6d} "
                f"{f.bytes_read:10d} {f.bytes_written:10d}"
            )
        lines.append(
            f"total: {self.total_ops} ops, {self.total_bytes_read} B read, "
            f"{self.total_bytes_written} B written"
        )
        return "\n".join(lines)


class Tracer:
    """Characterisation interposer; stacks over whatever is installed."""

    _PATCHES = ("open", "close", "read", "write", "pread", "pwrite")

    def __init__(self, *, clock=time.perf_counter):
        self._clock = clock
        self._saved: dict[str, object] = {}
        self._fd_paths: dict[int, str] = {}
        self._stats: dict[str, FileStats] = {}
        self._installed = False

    # ------------------------------------------------------------------ #

    def _stats_for(self, path: str) -> FileStats:
        stats = self._stats.get(path)
        if stats is None:
            stats = FileStats(path)
            self._stats[path] = stats
        return stats

    def report(self) -> TraceReport:
        return TraceReport(files=dict(self._stats))

    def reset(self) -> None:
        self._stats.clear()

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #

    def install(self) -> "Tracer":
        if self._installed:
            raise RuntimeError("tracer already installed")
        # Capture whatever is live *now* — possibly the LDPLFS shims.
        for name in self._PATCHES:
            self._saved[name] = getattr(os, name)
        self._saved["builtins.open"] = builtins.open
        os.open = self._open
        os.close = self._close
        os.read = self._read
        os.write = self._write
        os.pread = self._pread
        os.pwrite = self._pwrite
        builtins.open = self._builtin_open
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            raise RuntimeError("tracer is not installed")
        for name in self._PATCHES:
            setattr(os, name, self._saved[name])
        builtins.open = self._saved["builtins.open"]
        self._saved.clear()
        self._installed = False

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #
    # traced calls (delegate to the saved layer underneath)
    # ------------------------------------------------------------------ #

    def _open(self, path, flags, mode=0o777, **kwargs):
        fd = self._saved["open"](path, flags, mode, **kwargs)
        try:
            name = os.fspath(path)
            if isinstance(name, bytes):
                name = os.fsdecode(name)
        except TypeError:
            name = repr(path)
        self._fd_paths[fd] = name
        self._stats_for(name).opens += 1
        return fd

    def _close(self, fd):
        self._fd_paths.pop(fd, None)
        return self._saved["close"](fd)

    def _read(self, fd, n):
        t0 = self._clock()
        data = self._saved["read"](fd, n)
        path = self._fd_paths.get(fd)
        if path is not None:
            self._stats_for(path).observe_read(len(data), self._clock() - t0)
        return data

    def _write(self, fd, data):
        t0 = self._clock()
        n = self._saved["write"](fd, data)
        path = self._fd_paths.get(fd)
        if path is not None:
            self._stats_for(path).observe_write(n, self._clock() - t0)
        return n

    def _pread(self, fd, n, offset):
        t0 = self._clock()
        data = self._saved["pread"](fd, n, offset)
        path = self._fd_paths.get(fd)
        if path is not None:
            self._stats_for(path).observe_read(len(data), self._clock() - t0)
        return data

    def _pwrite(self, fd, data, offset):
        t0 = self._clock()
        n = self._saved["pwrite"](fd, data, offset)
        path = self._fd_paths.get(fd)
        if path is not None:
            self._stats_for(path).observe_write(n, self._clock() - t0)
        return n

    def _builtin_open(self, file, mode="r", *args, **kwargs):
        fh = self._saved["builtins.open"](file, mode, *args, **kwargs)
        if isinstance(file, (str, bytes)) or hasattr(file, "__fspath__"):
            name = os.fspath(file)
            if isinstance(name, bytes):
                name = os.fsdecode(name)
            self._stats_for(name).opens += 1
            try:
                self._fd_paths[fh.fileno()] = name
            except (OSError, ValueError, AttributeError):
                pass
        return fh


@contextmanager
def traced(**kwargs):
    tracer = Tracer(**kwargs)
    tracer.install()
    try:
        yield tracer
    finally:
        tracer.uninstall()
