"""An I/O tracing interposer that stacks with LDPLFS.

The paper's footnote 1: "although LDPLFS makes use of the LD_PRELOAD
environmental variable ... other libraries can also make use of the
dynamic loader (by appending multiple libraries into the environmental
variable), allowing tracing tools to be used alongside LDPLFS."  This is
that tracing tool — a Darshan-style characterisation layer that records
per-file operation counts, byte totals, access-size histograms, seek and
close counts, consecutive-offset sequentiality and timings: the inputs
the :mod:`repro.insights` rule engine needs to diagnose a run.

Because it patches the same symbols (``os.*``, ``builtins.open``) by
saving whatever is currently installed, it composes in either order:

- install the tracer *after* LDPLFS and it observes the application's
  logical I/O (calls destined for PLFS included);
- install it *before* and it observes the physical backend traffic the
  PLFS layer generates.

Use :class:`Tracer` directly or the :func:`traced` context manager::

    with interposed(mounts):
        with traced() as tracer:
            run_application()
    print(tracer.report())

Buffered I/O: ``builtins.open`` file objects perform their reads and
writes below the Python symbol layer (the C ``io`` module calls the
syscalls directly), so a symbol interposer cannot see them at the ``os``
level.  The tracer therefore wraps every :class:`io.IOBase` object that
``builtins.open`` returns in a delegating proxy that accounts at the
file-object layer (logical bytes; text-mode lengths are character
counts).  Files opened this way are flagged ``buffered`` in the report
so a reader knows which accounting layer produced their numbers —
previously such files reported 0 bytes as if no I/O had happened.
"""

from __future__ import annotations

import builtins
import io
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.sim.stats import SizeHistogram


@dataclass
class FileStats:
    """Accumulated statistics for one path (or descriptor lineage)."""

    path: str
    opens: int = 0
    closes: int = 0
    reads: int = 0
    writes: int = 0
    seeks: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    max_read: int = 0
    max_write: int = 0
    #: accesses whose offset continued exactly where the previous access
    #: on the same descriptor ended (consecutive-offset sequentiality)
    sequential_accesses: int = 0
    read_sizes: SizeHistogram = field(default_factory=SizeHistogram)
    write_sizes: SizeHistogram = field(default_factory=SizeHistogram)
    #: last ``builtins.open`` mode seen for this path ("" = os-level only)
    mode: str = ""
    #: True when I/O was accounted at the buffered file-object layer
    buffered: bool = False

    def observe_read(self, nbytes: int, elapsed: float, *, sequential: bool = True) -> None:
        self.reads += 1
        self.bytes_read += nbytes
        self.read_time += elapsed
        self.read_sizes.add(nbytes)
        if sequential:
            self.sequential_accesses += 1
        if nbytes > self.max_read:
            self.max_read = nbytes

    def observe_write(self, nbytes: int, elapsed: float, *, sequential: bool = True) -> None:
        self.writes += 1
        self.bytes_written += nbytes
        self.write_time += elapsed
        self.write_sizes.add(nbytes)
        if sequential:
            self.sequential_accesses += 1
        if nbytes > self.max_write:
            self.max_write = nbytes

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def sequentiality(self) -> float:
        """Fraction of accesses at consecutive offsets (1.0 = pure log)."""
        if self.accesses == 0:
            return 1.0
        return self.sequential_accesses / self.accesses


@dataclass
class TraceReport:
    files: dict[str, FileStats] = field(default_factory=dict)

    @property
    def total_bytes_written(self) -> int:
        return sum(f.bytes_written for f in self.files.values())

    @property
    def total_bytes_read(self) -> int:
        return sum(f.bytes_read for f in self.files.values())

    @property
    def total_ops(self) -> int:
        return sum(f.opens + f.reads + f.writes for f in self.files.values())

    def render(self) -> str:
        lines = [
            f"{'file':40s} {'opens':>5s} {'reads':>6s} {'writes':>6s} "
            f"{'seeks':>5s} {'B read':>10s} {'B written':>10s} {'seq':>5s}"
        ]
        for path in sorted(self.files):
            f = self.files[path]
            note = ""
            if f.buffered:
                note = " [opacity: buffered]" if f.accesses == 0 else " [buffered]"
            lines.append(
                f"{path[-40:]:40s} {f.opens:5d} {f.reads:6d} {f.writes:6d} "
                f"{f.seeks:5d} {f.bytes_read:10d} {f.bytes_written:10d} "
                f"{f.sequentiality:5.0%}{note}"
            )
        lines.append(
            f"total: {self.total_ops} ops, {self.total_bytes_read} B read, "
            f"{self.total_bytes_written} B written"
        )
        return "\n".join(lines)


class _TracedFile:
    """Delegating proxy around a ``builtins.open`` file object.

    Accounts reads/writes/seeks/closes at the file-object layer, where
    buffered I/O is actually visible.  Everything else is forwarded to
    the wrapped object untouched.
    """

    def __init__(self, fh, stats: FileStats, clock):
        self.__dict__["_fh"] = fh
        self.__dict__["_stats"] = stats
        self.__dict__["_clock"] = clock
        # The next access is sequential until a repositioning seek.
        self.__dict__["_seq"] = True

    # -- accounting helpers --------------------------------------------- #

    def _observe_read(self, n: int, elapsed: float) -> None:
        self._stats.observe_read(n, elapsed, sequential=self._seq)
        self.__dict__["_seq"] = True

    def _observe_write(self, n: int, elapsed: float) -> None:
        self._stats.observe_write(n, elapsed, sequential=self._seq)
        self.__dict__["_seq"] = True

    # -- traced methods -------------------------------------------------- #

    def read(self, *args, **kwargs):
        t0 = self._clock()
        data = self._fh.read(*args, **kwargs)
        self._observe_read(len(data) if data else 0, self._clock() - t0)
        return data

    def read1(self, *args, **kwargs):
        t0 = self._clock()
        data = self._fh.read1(*args, **kwargs)
        self._observe_read(len(data) if data else 0, self._clock() - t0)
        return data

    def readinto(self, b):
        t0 = self._clock()
        n = self._fh.readinto(b)
        self._observe_read(n or 0, self._clock() - t0)
        return n

    def readline(self, *args, **kwargs):
        t0 = self._clock()
        data = self._fh.readline(*args, **kwargs)
        self._observe_read(len(data) if data else 0, self._clock() - t0)
        return data

    def readlines(self, *args, **kwargs):
        t0 = self._clock()
        lines = self._fh.readlines(*args, **kwargs)
        self._observe_read(sum(len(x) for x in lines), self._clock() - t0)
        return lines

    def write(self, data):
        t0 = self._clock()
        n = self._fh.write(data)
        self._observe_write(n if n is not None else len(data), self._clock() - t0)
        return n

    def writelines(self, lines):
        lines = list(lines)
        t0 = self._clock()
        result = self._fh.writelines(lines)
        self._observe_write(sum(len(x) for x in lines), self._clock() - t0)
        return result

    def seek(self, *args, **kwargs):
        try:
            before = self._fh.tell()
        except (OSError, ValueError):
            before = None
        result = self._fh.seek(*args, **kwargs)
        if before is not None and result != before:
            self._stats.seeks += 1
            self.__dict__["_seq"] = False
        return result

    def close(self):
        if not self._fh.closed:
            self._stats.closes += 1
        return self._fh.close()

    # -- protocol forwarding --------------------------------------------- #

    def __enter__(self):
        self._fh.__enter__()
        return self

    def __exit__(self, *exc):
        if not self._fh.closed:
            self._stats.closes += 1
        return self._fh.__exit__(*exc)

    def __iter__(self):
        return self

    def __next__(self):
        t0 = self._clock()
        line = next(self._fh)
        self._observe_read(len(line), self._clock() - t0)
        return line

    def __getattr__(self, name):
        return getattr(self.__dict__["_fh"], name)

    def __setattr__(self, name, value):
        setattr(self.__dict__["_fh"], name, value)

    def __repr__(self):
        return f"<traced {self._fh!r}>"


class Tracer:
    """Characterisation interposer; stacks over whatever is installed."""

    _PATCHES = ("open", "close", "read", "write", "pread", "pwrite", "lseek")

    def __init__(self, *, clock=time.perf_counter):
        self._clock = clock
        self._saved: dict[str, object] = {}
        self._fd_paths: dict[int, str] = {}
        #: current file-cursor position per descriptor (mirrors lseek)
        self._fd_pos: dict[int, int] = {}
        #: offset at which the next access would be sequential
        self._fd_expect: dict[int, int] = {}
        self._stats: dict[str, FileStats] = {}
        self._installed = False

    # ------------------------------------------------------------------ #

    def _stats_for(self, path: str) -> FileStats:
        stats = self._stats.get(path)
        if stats is None:
            stats = FileStats(path)
            self._stats[path] = stats
        return stats

    def report(self) -> TraceReport:
        return TraceReport(files=dict(self._stats))

    def reset(self) -> None:
        self._stats.clear()

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #

    def install(self) -> "Tracer":
        if self._installed:
            raise RuntimeError("tracer already installed")
        # Capture whatever is live *now* — possibly the LDPLFS shims.
        for name in self._PATCHES:
            self._saved[name] = getattr(os, name)
        self._saved["builtins.open"] = builtins.open
        os.open = self._open
        os.close = self._close
        os.read = self._read
        os.write = self._write
        os.pread = self._pread
        os.pwrite = self._pwrite
        os.lseek = self._lseek
        builtins.open = self._builtin_open
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            raise RuntimeError("tracer is not installed")
        for name in self._PATCHES:
            setattr(os, name, self._saved[name])
        builtins.open = self._saved["builtins.open"]
        self._saved.clear()
        self._installed = False

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #
    # traced calls (delegate to the saved layer underneath)
    # ------------------------------------------------------------------ #

    def _open(self, path, flags, mode=0o777, **kwargs):
        fd = self._saved["open"](path, flags, mode, **kwargs)
        try:
            name = os.fspath(path)
            if isinstance(name, bytes):
                name = os.fsdecode(name)
        except TypeError:
            name = repr(path)
        self._fd_paths[fd] = name
        self._fd_pos[fd] = 0
        self._fd_expect[fd] = 0
        self._stats_for(name).opens += 1
        return fd

    def _close(self, fd):
        path = self._fd_paths.pop(fd, None)
        if path is not None:
            self._stats_for(path).closes += 1
        self._fd_pos.pop(fd, None)
        self._fd_expect.pop(fd, None)
        return self._saved["close"](fd)

    def _advance(self, fd, start, nbytes, *, move_cursor: bool) -> bool:
        """Record the access span; returns consecutive-offset flag."""
        sequential = start == self._fd_expect.get(fd, start)
        self._fd_expect[fd] = start + nbytes
        if move_cursor:
            self._fd_pos[fd] = start + nbytes
        return sequential

    def _read(self, fd, n):
        t0 = self._clock()
        data = self._saved["read"](fd, n)
        path = self._fd_paths.get(fd)
        if path is not None:
            start = self._fd_pos.get(fd, 0)
            seq = self._advance(fd, start, len(data), move_cursor=True)
            self._stats_for(path).observe_read(
                len(data), self._clock() - t0, sequential=seq
            )
        return data

    def _write(self, fd, data):
        t0 = self._clock()
        n = self._saved["write"](fd, data)
        path = self._fd_paths.get(fd)
        if path is not None:
            start = self._fd_pos.get(fd, 0)
            seq = self._advance(fd, start, n, move_cursor=True)
            self._stats_for(path).observe_write(
                n, self._clock() - t0, sequential=seq
            )
        return n

    def _pread(self, fd, n, offset):
        t0 = self._clock()
        data = self._saved["pread"](fd, n, offset)
        path = self._fd_paths.get(fd)
        if path is not None:
            seq = self._advance(fd, offset, len(data), move_cursor=False)
            self._stats_for(path).observe_read(
                len(data), self._clock() - t0, sequential=seq
            )
        return data

    def _pwrite(self, fd, data, offset):
        t0 = self._clock()
        n = self._saved["pwrite"](fd, data, offset)
        path = self._fd_paths.get(fd)
        if path is not None:
            seq = self._advance(fd, offset, n, move_cursor=False)
            self._stats_for(path).observe_write(
                n, self._clock() - t0, sequential=seq
            )
        return n

    def _lseek(self, fd, pos, how):
        result = self._saved["lseek"](fd, pos, how)
        path = self._fd_paths.get(fd)
        if path is not None:
            if result != self._fd_pos.get(fd, 0):
                # Repositioning (not a tell-style SEEK_CUR 0) counts.
                self._stats_for(path).seeks += 1
            self._fd_pos[fd] = result
        return result

    def _builtin_open(self, file, mode="r", *args, **kwargs):
        fh = self._saved["builtins.open"](file, mode, *args, **kwargs)
        if isinstance(file, (str, bytes)) or hasattr(file, "__fspath__"):
            name = os.fspath(file)
            if isinstance(name, bytes):
                name = os.fsdecode(name)
            stats = self._stats_for(name)
            stats.opens += 1
            stats.mode = mode
            try:
                self._fd_paths[fh.fileno()] = name
            except (OSError, ValueError, AttributeError):
                pass
            if isinstance(fh, io.IOBase):
                # Buffered file-object I/O is invisible at the os level;
                # account it at the file-object layer instead.
                stats.buffered = True
                return _TracedFile(fh, stats, self._clock)
        return fh


@contextmanager
def traced(**kwargs):
    tracer = Tracer(**kwargs)
    tracer.install()
    try:
        yield tracer
    finally:
        tracer.uninstall()
