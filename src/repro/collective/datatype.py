"""Datatype / file-view flattening: noncontiguous access as extent lists.

MPI applications describe noncontiguous file layouts with derived
datatypes; ROMIO flattens a datatype into an ``(offset, length)`` list
and drives every optimisation — list I/O, data sieving, two-phase
collective buffering — off that flat form (Thakur et al., "Optimizing
Noncontiguous Accesses in MPI-IO"; Ching et al., "Noncontiguous I/O
through PVFS").  This module is that flat form for the real PLFS path:

- a :class:`FileView` maps a contiguous span of a rank's *buffer* onto
  file offsets, producing :class:`Extent` triples
  ``(file_offset, buf_offset, length)``;
- :func:`coalesce` merges extents that are contiguous in both the file
  and the buffer (the unit the vectored fast path wants);
- :func:`file_runs` groups file-sorted extents into file-contiguous
  runs (the unit a collective aggregator writes with one ``plfs_writev``);
- :func:`covering_runs` additionally tolerates bounded gaps — the
  covering extents a data-sieving read/modify/write operates on.

Everything here is pure bookkeeping: no I/O, no state, so both the
independent list-I/O path and the two-phase engine share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class Extent(NamedTuple):
    """One flattened piece: buffer bytes ``[buf_offset, buf_offset+length)``
    land at file bytes ``[file_offset, file_offset+length)``.

    A ``NamedTuple`` rather than a dataclass: flattening a fine-grained
    view allocates one of these per record on the collective hot path.
    """

    file_offset: int
    buf_offset: int
    length: int

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length

    @property
    def buf_end(self) -> int:
        return self.buf_offset + self.length


class FileView:
    """Base file view: where view byte *v* lives in the file.

    Subclasses implement :meth:`extents`; *position* is the view-relative
    byte the transfer starts at (MPI's file-view position, advanced by
    each data call), so repeated collective rounds continue where the
    last one stopped.
    """

    def extents(self, nbytes: int, *, position: int = 0) -> list[Extent]:
        raise NotImplementedError


@dataclass(frozen=True)
class ContiguousView(FileView):
    """The trivial view: view byte v -> file byte displacement + v."""

    displacement: int = 0

    def extents(self, nbytes: int, *, position: int = 0) -> list[Extent]:
        if nbytes <= 0:
            return []
        return [Extent(self.displacement + position, 0, nbytes)]


@dataclass(frozen=True)
class StridedView(FileView):
    """A vector view: blocks of *block* bytes placed *stride* apart.

    View byte v falls in tile ``v // block`` at file offset
    ``displacement + tile * stride + (v % block)`` — the interleaved
    layout a rank sees when R ranks share a file record-wise
    (rank r's view: ``displacement = r * block``, ``stride = R * block``).
    """

    displacement: int
    block: int
    stride: int

    def __post_init__(self):
        if self.block <= 0:
            raise ValueError("block must be positive")
        if self.stride < self.block:
            raise ValueError("stride must be >= block (tiles cannot overlap)")

    def extents(self, nbytes: int, *, position: int = 0) -> list[Extent]:
        out: list[Extent] = []
        buf_off = 0
        v = position
        remaining = nbytes
        while remaining > 0:
            tile, within = divmod(v, self.block)
            take = min(self.block - within, remaining)
            out.append(
                Extent(self.displacement + tile * self.stride + within, buf_off, take)
            )
            buf_off += take
            v += take
            remaining -= take
        return out


@dataclass(frozen=True)
class IrregularView(FileView):
    """An explicit tile list (hindexed datatype), repeated cyclically.

    *tiles* are ``(file_offset, length)`` pairs relative to
    *displacement*, in view order; one cycle spans *extent* file bytes
    (default: past the last tile), so cycle *c*'s tiles shift by
    ``c * extent``.
    """

    tiles: tuple[tuple[int, int], ...]
    displacement: int = 0
    extent: int | None = None

    def __post_init__(self):
        if not self.tiles:
            raise ValueError("IrregularView needs at least one tile")
        for off, length in self.tiles:
            if length <= 0 or off < 0:
                raise ValueError("tiles must have positive length and offset >= 0")

    def _cycle_extent(self) -> int:
        if self.extent is not None:
            return self.extent
        return max(off + length for off, length in self.tiles)

    def extents(self, nbytes: int, *, position: int = 0) -> list[Extent]:
        cycle_bytes = sum(length for _, length in self.tiles)
        cycle_span = self._cycle_extent()
        out: list[Extent] = []
        buf_off = 0
        v = position
        remaining = nbytes
        while remaining > 0:
            cycle, within = divmod(v, cycle_bytes)
            for off, length in self.tiles:
                if within >= length:
                    within -= length
                    continue
                take = min(length - within, remaining)
                out.append(
                    Extent(
                        self.displacement + cycle * cycle_span + off + within,
                        buf_off,
                        take,
                    )
                )
                buf_off += take
                v += take
                remaining -= take
                within = 0
                if remaining <= 0:
                    break
        return out


# ---------------------------------------------------------------------- #
# extent algebra
# ---------------------------------------------------------------------- #


def coalesce(extents: list[Extent]) -> list[Extent]:
    """Merge neighbours contiguous in both file and buffer (view order).

    The flattened form of a mostly-contiguous view collapses back to few
    extents, so downstream work scales with real fragmentation, not with
    datatype verbosity.
    """
    out: list[Extent] = []
    for e in extents:
        # indexed access, not properties: one pass per extent on the
        # collective hot path
        length = e[2]
        if length <= 0:
            continue
        if out:
            prev = out[-1]
            if prev[0] + prev[2] == e[0] and prev[1] + prev[2] == e[1]:
                out[-1] = Extent(prev[0], prev[1], prev[2] + length)
                continue
        out.append(e)
    return out


def file_runs(extents: list[Extent]) -> list[tuple[int, list[Extent]]]:
    """File-sorted, file-contiguous runs: ``(run_offset, members)``.

    Members keep their buffer offsets, so a run maps directly to one
    gather (``plfs_writev`` of the members' buffer slices) or one read
    plus scatter.  Extents must not overlap in the file (MPI forbids
    overlapping writes in one collective; reads tolerate duplicates by
    being split into separate runs).
    """
    ordered = sorted(
        (e for e in extents if e.length > 0),
        key=lambda e: (e.file_offset, e.buf_offset),
    )
    runs: list[tuple[int, list[Extent]]] = []
    for e in ordered:
        if runs:
            start, members = runs[-1]
            if members[-1].file_end == e.file_offset:
                members.append(e)
                continue
        runs.append((e.file_offset, [e]))
    return runs


def covering_runs(
    extents: list[Extent], max_gap: int
) -> list[tuple[int, int, list[Extent]]]:
    """Gap-tolerant covering runs: ``(lo, hi, members)`` where file holes
    up to *max_gap* bytes are swallowed into the covering span — the
    extents one data-sieving read-modify-write (or sieved read) covers.
    """
    ordered = sorted(
        (e for e in extents if e.length > 0),
        key=lambda e: (e.file_offset, e.buf_offset),
    )
    runs: list[tuple[int, int, list[Extent]]] = []
    for e in ordered:
        if runs:
            lo, hi, members = runs[-1]
            if e.file_offset - hi <= max_gap:
                runs[-1] = (lo, max(hi, e.file_end), members + [e])
                continue
        runs.append((e.file_offset, e.file_end, [e]))
    return runs


def interleaved_view(rank: int, ranks: int, record_bytes: int, *, displacement: int = 0) -> StridedView:
    """The canonical shared-file layout: R ranks round-robin over
    *record_bytes* records.  Rank r owns records ``r, r+R, r+2R, ...``."""
    if not 0 <= rank < ranks:
        raise ValueError(f"rank {rank} outside communicator of {ranks}")
    return StridedView(
        displacement=displacement + rank * record_bytes,
        block=record_bytes,
        stride=ranks * record_bytes,
    )
