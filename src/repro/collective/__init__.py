"""Real-path collective buffering and noncontiguous I/O.

The ROMIO two-phase engine (Thakur et al.) and list-I/O noncontiguous
access (Ching et al.) over the real PLFS API — the paper's §II
optimisations with real bytes instead of simulated clocks.  See
:class:`CollectiveFile` for the engine and :mod:`repro.collective.listio`
for the independent path.
"""

from .aggregator import Aggregator, partition_domains, split_extent
from .datatype import (
    ContiguousView,
    Extent,
    FileView,
    IrregularView,
    StridedView,
    coalesce,
    covering_runs,
    file_runs,
    interleaved_view,
)
from .exchange import ExchangePlane
from .file import CollectiveFile
from .listio import list_read, list_write

__all__ = [
    "Aggregator",
    "CollectiveFile",
    "ContiguousView",
    "ExchangePlane",
    "Extent",
    "FileView",
    "IrregularView",
    "StridedView",
    "coalesce",
    "covering_runs",
    "file_runs",
    "interleaved_view",
    "list_read",
    "list_write",
    "partition_domains",
    "split_extent",
]
