"""Aggregator workers: file domains and phase-2 backend I/O.

ROMIO partitions each collective round's touched file range evenly among
``cb_nodes`` aggregators (the *file domains*); every member piece is
routed to the aggregator owning its offsets, and each aggregator then
touches the backend with large contiguous calls in ``cb_buffer_size``
chunks.  On the PLFS path phase 2 is deliberately a single vectored
append per contiguous run: one ``plfs_writev`` produces one data append
and one (merged) index record no matter how many member pieces the run
coalesced — the aggregation ratio the insights counters track.

An :class:`Aggregator` owns its *own* plfs handle (local ``Plfs_fd`` or
plfsd-backed ``RemoteFd``) and its *own* counter dict: aggregators run
concurrently on worker threads, so shared mutable state stops at the
engine, which merges each worker's counters after the phase-2 barrier.
Deliveries are plain ``(file_offset, view)`` tuples — one lands per
member extent per round, so this path stays allocation-light.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.plfs import api as plfs_api

from .datatype import Extent


def partition_domains(lo: int, hi: int, count: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into *count* contiguous, near-even file domains
    (ROMIO's file-domain assignment for one round)."""
    if hi <= lo:
        return [(lo, lo)] * count
    span = hi - lo
    bounds = [lo + (span * i) // count for i in range(count)] + [hi]
    return [(bounds[i], bounds[i + 1]) for i in range(count)]


def split_extent(
    extent: Extent, domains: list[tuple[int, int]], starts: list[int] | None = None
) -> list[tuple[int, Extent]]:
    """Cut one extent along domain boundaries -> ``(domain_idx, piece)``.

    *starts* is the precomputed list of domain start offsets (the engine
    passes it so routing a whole round bisects one shared list).  The
    overwhelmingly common case — the extent lives inside one domain —
    returns the extent itself, unsplit and unallocated.
    """
    if starts is None:
        starts = [d[0] for d in domains]
    idx = max(0, bisect_right(starts, extent.file_offset) - 1)
    if extent.file_end <= domains[idx][1] or idx == len(domains) - 1:
        return [(idx, extent)]
    out: list[tuple[int, Extent]] = []
    pos = extent.file_offset
    end = extent.file_end
    while pos < end and idx < len(domains):
        d_hi = domains[idx][1]
        take = (min(end, d_hi) if idx < len(domains) - 1 else end) - pos
        if take > 0:
            out.append(
                (
                    idx,
                    Extent(pos, extent.buf_offset + (pos - extent.file_offset), take),
                )
            )
            pos += take
        idx += 1
    return out


class Aggregator:
    """One file-domain owner: collects a round's pieces, flushes phase 2."""

    def __init__(self, index: int, fd, *, cb_buffer_size: int):
        self.index = index
        self.fd = fd
        self.cb_buffer_size = max(1, int(cb_buffer_size))
        self.stats: dict[str, int] = {}
        self._pieces: list[tuple[int, memoryview]] = []

    def deliver(self, file_offset: int, view: memoryview) -> None:
        self._pieces.append((file_offset, view))

    def _bump(self, key: str, delta: int) -> None:
        self.stats[key] = self.stats.get(key, 0) + delta

    # ------------------------------------------------------------------ #
    # phase 2: writes
    # ------------------------------------------------------------------ #

    def flush_writes(self) -> int:
        """Issue this round's backend writes; returns bytes written.

        Pieces are sorted into file order, grouped into file-contiguous
        runs, and each run goes down as vectored appends of at most
        ``cb_buffer_size`` bytes — one ``plfs_writev`` per chunk.
        """
        if not self._pieces:
            return 0
        pieces = sorted(self._pieces, key=lambda p: p[0])
        self._pieces = []
        fd = self.fd
        limit = self.cb_buffer_size
        total = 0
        calls = 0
        i = 0
        n = len(pieces)
        while i < n:
            chunk: list[memoryview] = []
            chunk_bytes = 0
            chunk_off = pieces[i][0]
            expected = chunk_off
            while i < n and pieces[i][0] == expected:
                view = pieces[i][1]
                i += 1
                vlen = len(view)
                expected += vlen
                if chunk_bytes + vlen < limit:
                    # fast path: whole piece fits under the chunk budget
                    chunk.append(view)
                    chunk_bytes += vlen
                    continue
                pos = 0
                while pos < vlen:
                    take = min(limit - chunk_bytes, vlen - pos)
                    chunk.append(view if take == vlen and not pos else view[pos : pos + take])
                    chunk_bytes += take
                    pos += take
                    if chunk_bytes >= limit:
                        total += plfs_api.plfs_writev(fd, chunk, chunk_off)
                        calls += 1
                        chunk_off += chunk_bytes
                        chunk = []
                        chunk_bytes = 0
            if chunk:
                total += plfs_api.plfs_writev(fd, chunk, chunk_off)
                calls += 1
        self._bump("cb_backend_writes", calls)
        self._bump("cb_backend_write_bytes", total)
        return total

    # ------------------------------------------------------------------ #
    # phase 2: reads
    # ------------------------------------------------------------------ #

    def serve_reads(self, requests: list[tuple[object, Extent]]) -> list[tuple[object, bytes]]:
        """Serve tagged read extents with coalesced backend reads.

        *requests* is ``(tag, extent)`` where the extent's file span is
        what the member wants; the return pairs each tag with its bytes
        (zero-filled past EOF).  Overlapping requests are legal for
        reads: each file-contiguous stretch is read once per run and
        every request slices from it.
        """
        if not requests:
            return []
        ordered = sorted(enumerate(requests), key=lambda t: t[1][1].file_offset)
        out: list = [None] * len(requests)
        calls = 0
        read_bytes = 0
        run_start = None
        run_end = None
        run_members: list[tuple[int, object, Extent]] = []

        def flush_run() -> None:
            nonlocal calls, read_bytes
            if run_start is None:
                return
            pos = run_start
            while pos < run_end:
                take = min(self.cb_buffer_size, run_end - pos)
                block = plfs_api.plfs_read(self.fd, take, pos)
                calls += 1
                read_bytes += len(block)
                for slot, tag, e in run_members:
                    lo = max(e.file_offset, pos)
                    hi = min(e.file_end, pos + take)
                    if lo >= hi:
                        continue
                    piece = (
                        bytearray(out[slot][1])
                        if out[slot] is not None
                        else bytearray(e.length)
                    )
                    data = block[lo - pos : hi - pos]
                    piece[lo - e.file_offset : lo - e.file_offset + len(data)] = data
                    out[slot] = (tag, bytes(piece))
                pos += take
            for slot, tag, e in run_members:
                if out[slot] is None:
                    out[slot] = (tag, bytes(e.length))

        for slot, (tag, e) in ordered:
            if run_start is not None and e.file_offset <= run_end:
                run_end = max(run_end, e.file_end)
                run_members.append((slot, tag, e))
                continue
            flush_run()
            run_start, run_end = e.file_offset, e.file_end
            run_members = [(slot, tag, e)]
        flush_run()
        self._bump("cb_backend_reads", calls)
        self._bump("cb_backend_read_bytes", read_bytes)
        return out
