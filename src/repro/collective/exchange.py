"""The phase-1 exchange plane: member payloads -> aggregator inboxes.

In ROMIO's two-phase engine, phase 1 moves each rank's noncontiguous
pieces to the aggregator that owns their file domain; phase 2 is the
aggregator's large contiguous backend access.  Here the member ranks and
aggregator workers share a process (threads) or a machine (plfsd-backed
workers), so the exchange is a memory plane, not a network:

inline handoff
    Zero-copy pass-through of the member's buffer slice.  Safe because
    ``write_at_all`` is collective: the member blocks at the phase-2
    barrier, so its buffer outlives the aggregator's use of it.

shm staging
    Payloads at or above the plfsd threshold are staged into a
    :class:`~repro.plfsd.shm.SegmentPool` slot — the *same* slotted
    data plane the plfsd client uses for large appends — and the
    aggregator reads a zero-copy window over the segment.  This is the
    transport a cross-process (plfsd-backed) aggregator needs, and the
    ``auto`` mode exercises it whenever a slot is free, falling back
    inline when the pool is exhausted or shared memory is unavailable.

Slots recycle at the round barrier (:meth:`ExchangePlane.round_complete`)
— by then phase 2 has consumed every staged view, the same
provably-done-with-the-pages ordering contract the plfsd client gets
from its strictly-ordered replies.

:meth:`ExchangePlane.post` is the per-piece hot path (one call per
member extent per round), so it takes an already-``"B"``-cast memoryview
and returns a plain view; counters are integers assembled into a dict
only when :attr:`stats` is read.
"""

from __future__ import annotations

from repro.plfsd.shm import SHM_THRESHOLD, SegmentPool, try_create_pool


class ExchangePlane:
    """Phase-1 transport with plfsd-plane shm staging and inline fallback."""

    def __init__(self, mode: str = "auto", *, threshold: int = SHM_THRESHOLD):
        if mode not in ("auto", "inline", "shm"):
            raise ValueError(f"unknown exchange mode {mode!r}")
        self.mode = mode
        self.threshold = threshold
        self.pool: SegmentPool | None = None
        if mode in ("auto", "shm"):
            self.pool = try_create_pool()
            if self.pool is None and mode == "shm":
                raise OSError("shared memory unavailable for exchange='shm'")
        self._staged: list[int] = []
        self._messages = 0
        self._bytes = 0
        self._shm_bytes = 0

    def post(self, view: memoryview) -> memoryview:
        """Hand one member piece (a ``"B"`` memoryview) to the plane; the
        returned view is valid until :meth:`round_complete`."""
        n = len(view)
        self._messages += 1
        self._bytes += n
        pool = self.pool
        if (
            pool is not None
            and n >= self.threshold
            and n <= pool.slot_bytes
            and pool.available
        ):
            slot, base, taken = pool.stage(view)
            self._staged.append(slot)
            self._shm_bytes += taken
            return pool.view(base, taken)
        return view

    def round_complete(self) -> None:
        """The phase barrier: every staged slot is consumed; recycle."""
        if self.pool is not None:
            for slot in self._staged:
                self.pool.release(slot)
        self._staged.clear()

    @property
    def stats(self) -> dict[str, int]:
        return {
            "exchange_messages": self._messages,
            "exchange_bytes": self._bytes,
            "exchange_shm_bytes": self._shm_bytes,
            "exchange_inline_bytes": self._bytes - self._shm_bytes,
        }

    def close(self) -> None:
        self.round_complete()
        if self.pool is not None:
            pool, self.pool = self.pool, None
            pool.destroy()
