"""``CollectiveFile``: ROMIO-style two-phase collective buffering over
the real PLFS path — the real-bytes twin of the simulated
:class:`repro.mpiio.MPIIOSimFile`.

One ``CollectiveFile`` models a communicator of ``nodes * ppn`` ranks
sharing one logical file.  Each rank describes its layout with a
:class:`~repro.collective.datatype.FileView`; a collective data call
then honors the :class:`~repro.mpiio.hints.MPIHints` exactly as ROMIO
would:

- ``romio_cb_write``/``romio_cb_read`` **on** (default): phase 1 routes
  every rank's flattened pieces through the
  :class:`~repro.collective.exchange.ExchangePlane` (zero-copy inline
  handoff, shm staging for plfsd-threshold payloads) to the
  ``cb_nodes`` aggregators owning the round's file domains; phase 2 has
  each aggregator issue single ``plfs_writev`` / coalesced ``plfs_read``
  calls in ``cb_buffer_size`` chunks on its *own* handle, concurrently
  on worker threads (or against a plfsd daemon — per-process
  aggregators in spirit and in transport).
- **off**: every rank moves its own pieces independently through the
  list-I/O layer, sieving per ``romio_ds_write``/``romio_ds_read``.

Aggregation is a *transport* optimisation: whichever path runs, the
same logical bytes land in the container and the container index stays
the single authority for what the file contains — the differential
tests demand byte-identical read-back between the two paths.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor

from repro.mpiio.hints import DEFAULT_HINTS, MPIHints
from repro.plfs import api as plfs_api

from . import listio
from .aggregator import Aggregator, partition_domains, split_extent
from .datatype import FileView, coalesce, interleaved_view
from .exchange import ExchangePlane

#: pid namespace for per-worker handles (keeps aggregator/rank droppings
#: distinct from the host process's own)
_PID_BASE = 1 << 20


class CollectiveFile:
    """One communicator's handle on one PLFS-backed logical file."""

    def __init__(
        self,
        path: str,
        *,
        nodes: int = 1,
        ppn: int = 1,
        hints: MPIHints = DEFAULT_HINTS,
        flags: int = os.O_CREAT | os.O_RDWR,
        mode: int = 0o644,
        open_opt=None,
        workers: str = "thread",
        exchange: str = "auto",
        daemon: str | None = None,
    ):
        if nodes < 1 or ppn < 1:
            raise ValueError("nodes and ppn must be >= 1")
        if workers not in ("thread", "inline"):
            raise ValueError(f"unknown workers mode {workers!r}")
        self.path = path
        self.nodes = nodes
        self.ppn = ppn
        self.ranks = nodes * ppn
        self.hints = hints
        self.flags = flags
        self.mode = mode
        self.open_opt = open_opt
        self.daemon = daemon
        self.aggregator_count = hints.aggregator_count(nodes)
        self.plane = ExchangePlane(exchange)
        self.stats: dict[str, int] = {}
        self._views: dict[int, FileView] = {}
        self._positions: dict[int, int] = {r: 0 for r in range(self.ranks)}
        self._agg_fds: list = []
        self._rank_fds: dict[int, object] = {}
        self._daemon_clients: list = []
        self._writer_totals: dict[str, int] = {}
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.aggregator_count,
                thread_name_prefix="cb-agg",
            )
            if workers == "thread" and self.aggregator_count > 1
            else None
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def set_view(self, rank: int, view: FileView) -> None:
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} outside communicator of {self.ranks}")
        self._views[rank] = view
        self._positions[rank] = 0

    def set_interleaved(self, record_bytes: int, *, displacement: int = 0) -> None:
        """The canonical shared-file layout: every rank round-robins over
        *record_bytes* records (rank r owns records r, r+R, ...)."""
        for rank in range(self.ranks):
            self.set_view(
                rank,
                interleaved_view(
                    rank, self.ranks, record_bytes, displacement=displacement
                ),
            )

    def _view(self, rank: int) -> FileView:
        try:
            return self._views[rank]
        except KeyError:
            raise ValueError(
                f"rank {rank} has no file view (call set_view/set_interleaved)"
            ) from None

    # ------------------------------------------------------------------ #
    # handles (one per worker: aggregators and ranks never share writers)
    # ------------------------------------------------------------------ #

    def _open_handle(self, pid: int):
        if self.daemon is not None:
            from repro.plfsd import client as plfsd_client

            cli = plfsd_client.connect(self.daemon, name=f"cb-{pid}")
            self._daemon_clients.append(cli)
            return cli.open(self.path, self.flags, self.mode)
        return plfs_api.plfs_open(
            self.path, self.flags, _PID_BASE + pid, self.mode, self.open_opt
        )

    def _aggregators(self) -> list[Aggregator]:
        if not self._agg_fds:
            for i in range(self.aggregator_count):
                self._agg_fds.append(self._open_handle(i))
        return [
            Aggregator(i, fd, cb_buffer_size=int(self.hints.cb_buffer_size))
            for i, fd in enumerate(self._agg_fds)
        ]

    def _rank_fd(self, rank: int):
        fd = self._rank_fds.get(rank)
        if fd is None:
            fd = self._open_handle(self.aggregator_count + rank)
            self._rank_fds[rank] = fd
        return fd

    def _run_workers(self, jobs: list):
        if self._pool is not None and len(jobs) > 1:
            return list(self._pool.map(lambda job: job(), jobs))
        return [job() for job in jobs]

    def _publish(self) -> None:
        """Flush every open writer so the next read on *any* handle
        revalidates against the full container.  Handles only overlay
        their own unflushed records; bytes buffered in a sibling handle
        (another aggregator, another rank) become visible through the
        index-cache generation bump a flush performs."""
        for fd in list(self._agg_fds) + list(self._rank_fds.values()):
            plfs_api.plfs_sync(fd)

    def _count(self, key: str, delta: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + delta

    def _merge_worker_stats(self, aggs: list[Aggregator]) -> None:
        # Aggregators count on their own dicts while running concurrently;
        # the engine folds them in single-threaded after the phase barrier.
        for agg in aggs:
            for key, value in agg.stats.items():
                self.stats[key] = self.stats.get(key, 0) + value

    # ------------------------------------------------------------------ #
    # collective write
    # ------------------------------------------------------------------ #

    def _contributions(self, contribs) -> dict[int, memoryview]:
        if not isinstance(contribs, dict):
            contribs = dict(enumerate(contribs))
        out: dict[int, memoryview] = {}
        for rank, data in contribs.items():
            view = memoryview(data)
            if view.itemsize != 1:
                view = view.cast("B")
            if len(view):
                out[rank] = view
        return out

    def write_at_all(self, contribs, *, position: int | None = None) -> int:
        """One collective write round: every rank contributes its bytes,
        laid out through its file view.  *contribs* maps rank -> buffer
        (a list is taken as rank order).  Returns total bytes written.

        With *position* the round reads the view from that byte (an
        ``_at`` call: positions don't advance); otherwise each rank
        continues at its own view position.
        """
        data = self._contributions(contribs)
        self._count("cb_rounds")
        if not self.hints.romio_cb_write:
            total = 0
            for rank in sorted(data):
                pos = self._positions[rank] if position is None else position
                total += listio.list_write(
                    self._rank_fd(rank),
                    self._view(rank),
                    data[rank],
                    position=pos,
                    ds_write=self.hints.romio_ds_write,
                    buffer_limit=int(self.hints.cb_buffer_size),
                    stats=self.stats,
                )
                if position is None:
                    self._positions[rank] += len(data[rank])
                if self.hints.romio_ds_write:
                    # Sieving is read-modify-write: commit this rank's
                    # block before the next rank's covering read, the
                    # serialized-RMW ordering ROMIO's fcntl lock provides.
                    plfs_api.plfs_sync(self._rank_fd(rank))
            return total

        # phase 0: flatten every rank's contribution into file extents
        # (tuple indexing, not Extent properties: this loop and phase 1
        # below run once per member extent per round)
        per_rank: dict[int, list] = {}
        lo = hi = None
        for rank in sorted(data):
            pos = self._positions[rank] if position is None else position
            extents = coalesce(
                self._view(rank).extents(len(data[rank]), position=pos)
            )
            per_rank[rank] = extents
            for off, _boff, length in extents:
                if lo is None:
                    lo, hi = off, off + length
                else:
                    if off < lo:
                        lo = off
                    if off + length > hi:
                        hi = off + length
            self._count("cb_member_extents", len(extents))
        if lo is None:
            return 0

        # phase 1: exchange pieces into the owning aggregators' inboxes.
        # The bisect fast path handles the overwhelmingly common
        # piece-inside-one-domain case without touching split_extent.
        aggs = self._aggregators()
        domains = partition_domains(lo, hi, len(aggs))
        starts = [d[0] for d in domains]
        last = len(domains) - 1
        post = self.plane.post
        deliver = [agg.deliver for agg in aggs]
        for rank, extents in per_rank.items():
            buf = data[rank]
            for extent in extents:
                off, boff, length = extent
                idx = bisect_right(starts, off) - 1
                if idx < 0:
                    idx = 0
                if off + length <= domains[idx][1] or idx == last:
                    deliver[idx](off, post(buf[boff : boff + length]))
                    continue
                for didx, piece in split_extent(extent, domains, starts):
                    deliver[didx](
                        piece.file_offset,
                        post(buf[piece.buf_offset : piece.buf_end]),
                    )

        # phase 2: aggregators flush concurrently, then the barrier
        total = sum(self._run_workers([agg.flush_writes for agg in aggs]))
        self.plane.round_complete()
        self._merge_worker_stats(aggs)
        if position is None:
            for rank in per_rank:
                self._positions[rank] += len(data[rank])
        return total

    # ------------------------------------------------------------------ #
    # collective read
    # ------------------------------------------------------------------ #

    def read_at_all(self, nbytes, *, position: int | None = None) -> dict[int, bytes]:
        """One collective read round: every rank reads *nbytes* bytes
        (an int, or a dict rank -> count) through its view.  Returns
        rank -> bytes (zero-filled past EOF)."""
        if isinstance(nbytes, int):
            wanted = {r: nbytes for r in range(self.ranks)}
        else:
            wanted = dict(nbytes)
        wanted = {r: n for r, n in wanted.items() if n > 0}
        self._count("cb_rounds")
        # Collective read is a barrier: whatever any handle wrote in
        # earlier rounds must be readable by whichever worker owns the
        # domain now (write and read rounds can partition differently).
        self._publish()
        if not self.hints.romio_cb_read:
            out: dict[int, bytes] = {}
            for rank in sorted(wanted):
                pos = self._positions[rank] if position is None else position
                out[rank] = listio.list_read(
                    self._rank_fd(rank),
                    self._view(rank),
                    wanted[rank],
                    position=pos,
                    ds_read=self.hints.romio_ds_read,
                    buffer_limit=int(self.hints.cb_buffer_size),
                    stats=self.stats,
                )
                if position is None:
                    self._positions[rank] += wanted[rank]
            return out

        per_rank: dict[int, list] = {}
        lo = hi = None
        for rank in sorted(wanted):
            pos = self._positions[rank] if position is None else position
            extents = coalesce(self._view(rank).extents(wanted[rank], position=pos))
            per_rank[rank] = extents
            for e in extents:
                lo = e.file_offset if lo is None else min(lo, e.file_offset)
                hi = e.file_end if hi is None else max(hi, e.file_end)
            self._count("cb_member_extents", len(extents))
        if lo is None:
            return {}

        aggs = self._aggregators()
        domains = partition_domains(lo, hi, len(aggs))
        starts = [d[0] for d in domains]
        requests: list[list] = [[] for _ in aggs]
        for rank, extents in per_rank.items():
            for extent in extents:
                for didx, piece in split_extent(extent, domains, starts):
                    requests[didx].append(((rank, piece.buf_offset), piece))

        served = self._run_workers(
            [
                (lambda a=agg, r=reqs: a.serve_reads(r))
                for agg, reqs in zip(aggs, requests)
            ]
        )
        self._merge_worker_stats(aggs)
        out = {rank: bytearray(wanted[rank]) for rank in per_rank}
        for batch in served:
            for (rank, buf_offset), piece in batch:
                out[rank][buf_offset : buf_offset + len(piece)] = piece
        if position is None:
            for rank in per_rank:
                self._positions[rank] += wanted[rank]
        return {rank: bytes(buf) for rank, buf in out.items()}

    # ------------------------------------------------------------------ #
    # lifecycle / stats
    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        for fd in list(self._agg_fds) + list(self._rank_fds.values()):
            plfs_api.plfs_sync(fd)

    def _harvest(self, fd) -> None:
        writer = getattr(fd, "writer", None)
        if writer is not None:
            for key, value in writer.stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                self._writer_totals[key] = self._writer_totals.get(key, 0) + value

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for fd in list(self._agg_fds) + list(self._rank_fds.values()):
            self._harvest(fd)
            plfs_api.plfs_close(fd)
        self._agg_fds.clear()
        self._rank_fds.clear()
        for cli in self._daemon_clients:
            cli.close()
        self._daemon_clients.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.plane.close()

    def __enter__(self) -> "CollectiveFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def writer_stats(self) -> dict[str, int]:
        """Aggregated WriteFile counters across every worker handle
        (harvested at close; live handles contribute on demand)."""
        totals = dict(self._writer_totals)
        for fd in list(self._agg_fds) + list(self._rank_fds.values()):
            writer = getattr(fd, "writer", None)
            if writer is not None:
                for key, value in writer.stats.items():
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    totals[key] = totals.get(key, 0) + value
        return totals

    @property
    def counters(self) -> dict[str, int]:
        """Engine + exchange counters, insights-export ready."""
        merged = dict(self.plane.stats)
        merged.update(self.stats)
        return merged
