"""List I/O + data sieving: independent noncontiguous access, real bytes.

The two classical answers to a noncontiguous request from *one* rank
(Thakur et al. §3; Ching et al.):

list I/O
    Flatten the view, group into file-contiguous runs, and move each run
    with one vectored call — ``plfs_writev`` gathers the run's buffer
    slices into a single append + one (merged) index record, and one
    ``plfs_read`` per run feeds the scatter.  This is the default: PLFS
    appends make strided *writes* cheap regardless of the logical stride.

data sieving (``romio_ds_write`` / ``romio_ds_read``)
    Read one covering extent (holes included), modify/scatter in memory,
    and for writes put the whole block back — two large operations
    instead of many small strided ones, "at the expense of" moving the
    hole bytes too.  Worthwhile only when the holes are a bounded
    fraction of the span, so sieving gates on a gap budget derived from
    the run itself and never exceeds ``cb_buffer_size`` of staging
    memory.

Counters land in the *stats* dict the caller threads through (the
collective engine aggregates them into its insights export).
"""

from __future__ import annotations

from repro.plfs import api as plfs_api

from .datatype import Extent, FileView, coalesce, covering_runs, file_runs

#: sieve only when hole bytes are at most this fraction of the covering span
SIEVE_MAX_GAP_FRACTION = 0.5


def _count(stats: dict | None, key: str, delta: int = 1) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + delta


def _sieve_worthwhile(lo: int, hi: int, members: list[Extent], limit: int) -> bool:
    span = hi - lo
    if span > limit or len(members) < 2:
        return False
    data_bytes = sum(e.length for e in members)
    return span - data_bytes <= span * SIEVE_MAX_GAP_FRACTION


def list_write(
    fd,
    view: FileView,
    data,
    *,
    position: int = 0,
    pid: int | None = None,
    ds_write: bool = False,
    buffer_limit: int = 16 * 1024 * 1024,
    stats: dict | None = None,
) -> int:
    """Write *data* through *view* starting at view byte *position*.

    Returns bytes written.  With *ds_write* the strided runs that fit the
    sieve budget go down as read-modify-write of one covering extent;
    everything else takes the vectored list-I/O path.
    """
    payload = memoryview(data)
    if payload.itemsize != 1:
        payload = payload.cast("B")
    extents = coalesce(view.extents(len(payload), position=position))
    _count(stats, "member_extents", len(extents))
    total = 0
    max_gap = buffer_limit if ds_write else 0
    for lo, hi, members in covering_runs(extents, max_gap):
        if ds_write and _sieve_worthwhile(lo, hi, members, buffer_limit):
            span = hi - lo
            base = bytearray(span)
            existing = plfs_api.plfs_read(fd, span, lo)
            base[: len(existing)] = existing
            for e in members:
                base[e.file_offset - lo : e.file_end - lo] = payload[
                    e.buf_offset : e.buf_end
                ]
            total += plfs_api.plfs_write(fd, base, span, lo, pid=pid) - (
                span - sum(e.length for e in members)
            )
            _count(stats, "sieve_hits")
            _count(stats, "sieve_read_bytes", len(existing))
            _count(stats, "listio_backend_calls", 2)
            continue
        for run_off, run_members in file_runs(members):
            total += plfs_api.plfs_writev(
                fd,
                [payload[e.buf_offset : e.buf_end] for e in run_members],
                run_off,
                pid=pid,
            )
            _count(stats, "listio_runs")
            _count(stats, "listio_backend_calls")
    return total


def list_read(
    fd,
    view: FileView,
    nbytes: int,
    *,
    position: int = 0,
    ds_read: bool = False,
    buffer_limit: int = 16 * 1024 * 1024,
    stats: dict | None = None,
) -> bytes:
    """Read *nbytes* through *view* starting at view byte *position*.

    Returns exactly *nbytes* bytes (zero-filled past EOF, like reading a
    hole).  With *ds_read* strided runs within the sieve budget issue one
    covering read and scatter from it; otherwise each file-contiguous run
    is one ``plfs_read``.
    """
    extents = coalesce(view.extents(nbytes, position=position))
    _count(stats, "member_extents", len(extents))
    out = bytearray(nbytes)
    max_gap = buffer_limit if ds_read else 0
    for lo, hi, members in covering_runs(extents, max_gap):
        if ds_read and _sieve_worthwhile(lo, hi, members, buffer_limit):
            block = plfs_api.plfs_read(fd, hi - lo, lo)
            for e in members:
                piece = block[e.file_offset - lo : e.file_end - lo]
                out[e.buf_offset : e.buf_offset + len(piece)] = piece
            _count(stats, "sieve_hits")
            _count(stats, "sieve_read_bytes", len(block))
            _count(stats, "listio_backend_calls")
            continue
        for run_off, run_members in file_runs(members):
            run_len = sum(e.length for e in run_members)
            block = plfs_api.plfs_read(fd, run_len, run_off)
            pos = 0
            for e in run_members:
                piece = block[pos : pos + e.length]
                out[e.buf_offset : e.buf_offset + len(piece)] = piece
                pos += e.length
            _count(stats, "listio_runs")
            _count(stats, "listio_backend_calls")
    return bytes(out)
