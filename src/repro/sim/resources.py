"""Shared-resource primitives for the simulator.

- :class:`Resource` — FCFS server pool (n concurrent holders), used for
  NICs, disk channels, the MDS and lock tokens.
- :class:`Tank` — a continuous-capacity container with blocking put/get,
  used for the client write-back cache (dirty bytes).
- :class:`BandwidthPipe` — a convenience wrapping a Resource that converts
  byte counts into occupancy time at a fixed bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from .engine import Environment, Event


class Resource:
    """FCFS resource with *capacity* concurrent holders."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[tuple[Event, float]] = deque()
        #: total time-weighted occupancy (for utilisation reports)
        self._busy_time = 0.0
        self._last_change = 0.0
        #: cumulative time requests spent queued before being granted
        self.total_wait_time = 0.0

    # -- accounting ----------------------------------------------------- #

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def utilisation(self, horizon: float | None = None) -> float:
        """Mean busy fraction over [0, horizon] (defaults to now)."""
        self._account()
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self._busy_time / (horizon * self.capacity)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- protocol -------------------------------------------------------- #

    def request(self) -> Event:
        """Returns an event that fires when a slot is granted."""
        ev = self.env.event()
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append((ev, self.env.now))
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter (occupancy
            # unchanged).
            ev, enqueued = self._waiters.popleft()
            self.total_wait_time += self.env.now - enqueued
            ev.succeed()
        else:
            self._account()
            self.in_use -= 1

    def use(self, duration: float) -> Generator:
        """Process helper: hold one slot for *duration*::

            yield from resource.use(service_time)
        """
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()


class BandwidthPipe:
    """A link of fixed bandwidth with *capacity* parallel channels.

    ``transfer(nbytes)`` occupies one channel for ``nbytes / bandwidth``
    seconds plus the fixed per-message latency.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        *,
        latency: float = 0.0,
        capacity: int = 1,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.resource = Resource(env, capacity)

    def transfer_time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: float) -> Generator:
        yield from self.resource.use(self.transfer_time(nbytes))

    def utilisation(self, horizon: float | None = None) -> float:
        return self.resource.utilisation(horizon)


class Tank:
    """Continuous-level container with blocking put/get.

    ``put`` blocks while the tank lacks free space; ``get`` blocks while it
    lacks content.  Used to model dirty-page budgets: writers ``put`` dirty
    bytes, the drain process ``get``s them out as the disk absorbs data.
    """

    def __init__(self, env: Environment, capacity: float, level: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= level <= capacity:
            raise ValueError("initial level out of range")
        self.env = env
        self.capacity = capacity
        self.level = level
        self._putters: deque[tuple[Event, float]] = deque()
        self._getters: deque[tuple[Event, float]] = deque()

    @property
    def free(self) -> float:
        return self.capacity - self.level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.capacity:
            raise ValueError(
                f"put of {amount} can never fit capacity {self.capacity}"
            )
        ev = self.env.event()
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = self.env.event()
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def get_up_to(self, amount: float) -> float:
        """Non-blocking: immediately drain up to *amount*; returns taken."""
        taken = min(amount, self.level)
        if taken > 0:
            self.level -= taken
            self._settle()
        return taken

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._putters[0][1] <= self.free:
                ev, amount = self._putters.popleft()
                self.level += amount
                ev.succeed()
                progressed = True
            if self._getters and self._getters[0][1] <= self.level:
                ev, amount = self._getters.popleft()
                self.level -= amount
                ev.succeed()
                progressed = True
