"""A small deterministic discrete-event simulation core.

Generator-based processes in the style of SimPy, self-contained so the
simulator has no dependencies beyond the standard library:

- :class:`Environment` owns simulated time and the event heap.
- :class:`Event` is a one-shot occurrence that processes wait on.
- :class:`Process` wraps a generator; each ``yield``-ed event suspends the
  process until the event fires.

Determinism: events scheduled for the same instant fire in schedule order
(a monotone sequence number breaks ties), so identical runs produce
identical traces — required for reproducible benchmark output.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable


class SimError(RuntimeError):
    """Misuse of the simulation core (e.g. triggering an event twice)."""


class Event:
    """A one-shot event; processes ``yield`` it to wait for it."""

    __slots__ = ("env", "callbacks", "_ok", "_value", "_pending_schedule")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._ok: bool | None = None
        self._value: Any = None
        self._pending_schedule = False

    @property
    def triggered(self) -> bool:
        """True once a value/exception has been set (it may not yet have
        been processed from the heap)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._ok is not None:
            raise SimError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.env._schedule(self)
        return self


class Timeout(Event):
    """Fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class AllOf(Event):
    """Fires when every child event has fired (a barrier/join)."""

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._ok is False:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(None)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields :class:`Event` objects; the value sent back into
    the generator is the event's value.  A failed event is thrown into the
    generator as an exception.  The generator's ``return`` value becomes
    the process event's value.
    """

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", gen: Generator):
        super().__init__(env)
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen)!r}")
        self._gen = gen
        # Kick off at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, trigger: Event) -> None:
        while True:
            try:
                if trigger._ok:
                    target = self._gen.send(trigger._value)
                else:
                    target = self._gen.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                if self.env.strict:
                    raise
                self.fail(exc)
                return
            if not isinstance(target, Event):
                raise SimError(
                    f"process yielded {target!r}; processes must yield events"
                )
            if target.env is not self.env:
                raise SimError("process yielded an event from another Environment")
            if target.processed:
                trigger = target
                continue
            target.callbacks.append(self._resume)
            return


class Environment:
    """Simulated clock plus the pending-event heap."""

    def __init__(self, *, strict: bool = True):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: strict=True re-raises process exceptions immediately (best for
        #: tests); strict=False converts them into failed process events.
        self.strict = strict

    # ------------------------------------------------------------------ #
    # event construction
    # ------------------------------------------------------------------ #

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------ #
    # scheduling / execution
    # ------------------------------------------------------------------ #

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._pending_schedule:
            raise SimError("event already scheduled")
        event._pending_schedule = True
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next event, or +inf when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the heap empties, *until* (a time) passes, or *until*
        (an event) fires.  Returns the event's value in the last case."""
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._heap:
                    raise SimError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    )
                self.step()
            if stop._ok is False:
                raise stop._value
            return stop._value
        horizon = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        if until is not None and horizon > self.now:
            # The clock stands at the horizon after running to a time.
            self.now = horizon
        return None
