"""``repro.sim`` — deterministic discrete-event simulation core.

A compact SimPy-style engine (events, generator processes, FCFS resources,
continuous tanks) used by :mod:`repro.cluster`, :mod:`repro.fs` and
:mod:`repro.mpiio` to reproduce the paper's at-scale experiments on
simulated Minerva and Sierra.
"""

from .engine import AllOf, Environment, Event, Process, SimError, Timeout
from .resources import BandwidthPipe, Resource, Tank
from .stats import GB, MB, OpCounter, PhaseTimer

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "SimError",
    "Resource",
    "BandwidthPipe",
    "Tank",
    "PhaseTimer",
    "OpCounter",
    "MB",
    "GB",
]
