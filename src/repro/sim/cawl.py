"""CAWL-style cache-aware write-back model over the DES core.

Executes a :mod:`repro.bench` op stream on a *simulated* storage stack:
a block-granular write-back cache (absorbing hot overwrites, the CAWL
regime) in front of a slow backing store, with metadata creates
serializing on a single-capacity MDS resource — the same dedicated-MDS
topology the real daemon reproduces.  Because the clock is simulated,
every latency and counter is exactly deterministic, which makes the
``sim`` config the noise-free twin of the ``direct`` trajectory: the
bench guard compares both with the identical schema and rules.

Model (all parameters overridable through the scenario params dict):

- writes land in the cache at cache speed; bytes newly dirtied fill a
  :class:`~repro.sim.resources.Tank`, whose capacity is the natural
  backpressure — a full cache stalls the writer until the flusher drains;
- a background flusher wakes above the high-watermark and drains down to
  the low-watermark at backing bandwidth;
- a write to an already-dirty block is *absorbed* (no new dirty bytes:
  the write-back win the hot/cold scenario is shaped to expose);
- reads hit resident blocks at cache speed and miss to the backing store,
  promoting what they fetch; clean blocks evict LRU under the residency
  cap, dirty blocks are pinned until flushed;
- fsync drains every dirty byte synchronously;
- creates pay the MDS metadata cost under a capacity-1 resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Environment, Event
from .resources import Resource, Tank

#: default model parameters (keys the scenario params dict may override)
DEFAULTS = {
    "sim_cache_bytes": 128 * 1024,
    "sim_block_bytes": 4096,
    "sim_cache_bw": 2e9,  # bytes/s
    "sim_backing_bw": 100e6,  # bytes/s
    "sim_cache_op_seconds": 2e-6,
    "sim_backing_op_seconds": 1e-4,
    "sim_meta_op_seconds": 1e-3,
    "sim_hiwater": 0.75,  # fraction of cache
    "sim_lowater": 0.25,
    "sim_flush_chunk_bytes": 64 * 1024,
}


@dataclass
class _ModelParams:
    cache_bytes: int
    block_bytes: int
    cache_bw: float
    backing_bw: float
    cache_op_seconds: float
    backing_op_seconds: float
    meta_op_seconds: float
    hiwater_bytes: float
    lowater_bytes: float
    flush_chunk_bytes: int

    @classmethod
    def from_params(cls, params: dict | None) -> "_ModelParams":
        merged = dict(DEFAULTS)
        for key in DEFAULTS:
            if params and key in params:
                merged[key] = params[key]
        cache = int(merged["sim_cache_bytes"])
        return cls(
            cache_bytes=cache,
            block_bytes=int(merged["sim_block_bytes"]),
            cache_bw=float(merged["sim_cache_bw"]),
            backing_bw=float(merged["sim_backing_bw"]),
            cache_op_seconds=float(merged["sim_cache_op_seconds"]),
            backing_op_seconds=float(merged["sim_backing_op_seconds"]),
            meta_op_seconds=float(merged["sim_meta_op_seconds"]),
            hiwater_bytes=float(merged["sim_hiwater"]) * cache,
            lowater_bytes=float(merged["sim_lowater"]) * cache,
            flush_chunk_bytes=int(merged["sim_flush_chunk_bytes"]),
        )


class _CawlModel:
    """The simulated stack: cache state + the flusher process."""

    def __init__(self, env: Environment, p: _ModelParams):
        self.env = env
        self.p = p
        self.dirty = Tank(env, capacity=float(p.cache_bytes))
        self.mds = Resource(env, capacity=1)
        #: (file, block) -> True while resident; insertion order is LRU
        self.resident: dict[tuple[str, int], bool] = {}
        #: (file, block) -> dirty bytes awaiting write-back (FIFO)
        self.dirty_blocks: dict[tuple[str, int], int] = {}
        self.counters: dict[str, int] = {
            "sim_cache_hits": 0,
            "sim_cache_misses": 0,
            "sim_absorbed_overwrites": 0,
            "sim_writeback_flushes": 0,
            "sim_writeback_bytes": 0,
            "sim_sync_flushes": 0,
            "sim_meta_ops": 0,
            "sim_evictions": 0,
            "sim_backpressure_stalls": 0,
        }
        self._flush_wanted = Event(env)
        self._done = False
        env.process(self._flusher())

    # -- residency ------------------------------------------------------ #

    def _blocks(self, file: str, offset: int, size: int):
        b = self.p.block_bytes
        last = max(offset, offset + size - 1)
        return [(file, k) for k in range(offset // b, last // b + 1)]

    def _touch(self, key: tuple[str, int]) -> None:
        self.resident.pop(key, None)
        self.resident[key] = True
        cap = max(1, self.p.cache_bytes // self.p.block_bytes)
        while len(self.resident) > cap:
            victim = next(
                (k for k in self.resident if k not in self.dirty_blocks), None
            )
            if victim is None:
                break  # every block dirty: overcommit until the flusher runs
            del self.resident[victim]
            self.counters["sim_evictions"] += 1

    def _mark_clean(self, nbytes: float) -> None:
        """Retire the oldest dirty blocks covering ~nbytes (FIFO, matching
        the flusher's drain order)."""
        remaining = nbytes
        for key in list(self.dirty_blocks):
            if remaining <= 0:
                break
            remaining -= self.dirty_blocks.pop(key)

    # -- flusher -------------------------------------------------------- #

    def wake_flusher(self) -> None:
        if not self._flush_wanted.triggered:
            self._flush_wanted.succeed()

    def _flusher(self):
        p = self.p
        while True:
            yield self._flush_wanted
            if self._done:
                return
            self._flush_wanted = Event(self.env)
            while self.dirty.level > p.lowater_bytes:
                chunk = min(
                    self.dirty.level - p.lowater_bytes, p.flush_chunk_bytes
                )
                yield self.env.timeout(
                    p.backing_op_seconds + chunk / p.backing_bw
                )
                drained = self.dirty.get_up_to(chunk)
                self._mark_clean(drained)
                self.counters["sim_writeback_flushes"] += 1
                self.counters["sim_writeback_bytes"] += int(drained)

    def shutdown(self) -> None:
        self._done = True
        self.wake_flusher()

    # -- op implementations (generator processes) ----------------------- #

    def op_create(self, file: str, size: int):
        p = self.p
        req = self.mds.request()
        yield req
        yield self.env.timeout(p.meta_op_seconds)
        self.mds.release()
        self.counters["sim_meta_ops"] += 1
        if size:
            yield from self.op_write(file, 0, size)

    def op_write(self, file: str, offset: int, size: int):
        p = self.p
        new_bytes = 0
        for key in self._blocks(file, offset, size):
            if key in self.dirty_blocks:
                self.counters["sim_absorbed_overwrites"] += 1
            else:
                self.dirty_blocks[key] = p.block_bytes
                new_bytes += p.block_bytes
            self._touch(key)
        remaining = float(new_bytes)
        while remaining > 0:
            # chunk at half the cache so a put can always eventually fit
            # once the flusher drains to the low-watermark
            amount = min(remaining, self.dirty.capacity / 2)
            if self.dirty.level + amount > self.dirty.capacity:
                self.counters["sim_backpressure_stalls"] += 1
                self.wake_flusher()
            yield self.dirty.put(amount)
            remaining -= amount
        yield self.env.timeout(p.cache_op_seconds + size / p.cache_bw)
        if self.dirty.level >= p.hiwater_bytes:
            self.wake_flusher()

    def op_read(self, file: str, offset: int, size: int):
        p = self.p
        miss_bytes = 0
        for key in self._blocks(file, offset, size):
            if key in self.resident:
                self.counters["sim_cache_hits"] += 1
            else:
                self.counters["sim_cache_misses"] += 1
                miss_bytes += p.block_bytes
            self._touch(key)
        if miss_bytes:
            yield self.env.timeout(
                p.backing_op_seconds + miss_bytes / p.backing_bw
            )
        yield self.env.timeout(p.cache_op_seconds + size / p.cache_bw)

    def op_fsync(self):
        p = self.p
        amount = self.dirty.level
        self.counters["sim_sync_flushes"] += 1
        if amount > 0:
            yield self.env.timeout(p.backing_op_seconds + amount / p.backing_bw)
            drained = self.dirty.get_up_to(amount)
            self._mark_clean(drained)
            self.counters["sim_writeback_bytes"] += int(drained)
        else:
            yield self.env.timeout(p.backing_op_seconds)


def execute_sim_stream(ops, seed: int, *, params: dict | None = None):
    """Replay a bench op stream through the CAWL model.

    Returns a :class:`repro.bench.runner.ExecutionResult` whose
    ``wall_seconds`` and latencies are *simulated* seconds — the runner
    normalizes them with calibration 1.0, so the derived metrics are
    exactly reproducible.
    """
    from repro.bench.runner import ExecutionResult

    env = Environment()
    model = _CawlModel(env, _ModelParams.from_params(params))
    result = ExecutionResult()
    by_kind: dict[str, int] = {}

    def client():
        for op in ops:
            by_kind[op.kind] = by_kind.get(op.kind, 0) + 1
            t0 = env.now
            if op.kind == "create":
                yield from model.op_create(op.file, op.size)
            elif op.kind == "write":
                yield from model.op_write(op.file, op.offset, op.size)
            elif op.kind == "read":
                yield from model.op_read(op.file, op.offset, op.size)
            elif op.kind == "fsync":
                yield from model.op_fsync()
            else:
                raise ValueError(
                    f"sim config cannot execute op kind {op.kind!r}"
                )
            result.latencies.setdefault((op.tenant, op.kind), []).append(
                env.now - t0
            )
        model.shutdown()

    done = env.process(client())
    env.run(until=done)
    result.wall_seconds = env.now
    result.counters.update(model.counters)
    result.counters["ops_total"] = len(ops)
    for kind, n in sorted(by_kind.items()):
        result.counters[f"ops_{kind}"] = n
    result.counters["sim_residual_dirty_bytes"] = int(model.dirty.level)
    return result
