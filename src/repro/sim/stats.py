"""Measurement helpers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

MB = 1024.0 * 1024.0
GB = 1024.0 * MB

#: Darshan-style access-size buckets: (inclusive upper bound, label).
#: Shared by the tracer and the insights characterisation layer so that
#: observed and simulated histograms are directly comparable.
SIZE_BUCKETS: tuple[tuple[float, str], ...] = (
    (100.0, "0-100"),
    (1e3, "100-1K"),
    (1e4, "1K-10K"),
    (1e5, "10K-100K"),
    (1e6, "100K-1M"),
    (4e6, "1M-4M"),
    (1e7, "4M-10M"),
    (1e8, "10M-100M"),
    (1e9, "100M-1G"),
    (float("inf"), "1G+"),
)

SIZE_BUCKET_LABELS: tuple[str, ...] = tuple(label for _, label in SIZE_BUCKETS)


def size_bucket(nbytes: float) -> str:
    """The histogram bucket label an access of *nbytes* falls into."""
    for bound, label in SIZE_BUCKETS:
        if nbytes <= bound:
            return label
    return SIZE_BUCKETS[-1][1]


@dataclass
class SizeHistogram:
    """Access-size histogram over the Darshan-style decade buckets."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, nbytes: float, n: int = 1) -> None:
        label = size_bucket(nbytes)
        self.counts[label] = self.counts.get(label, 0) + n

    def merge(self, other: "SizeHistogram") -> None:
        for label, n in other.counts.items():
            self.counts[label] = self.counts.get(label, 0) + n

    def total(self) -> int:
        return sum(self.counts.values())

    def fraction_at_most(self, limit: float) -> float:
        """Fraction of accesses in buckets wholly at or below *limit*."""
        total = self.total()
        if total == 0:
            return 0.0
        small = sum(
            self.counts.get(label, 0)
            for bound, label in SIZE_BUCKETS
            if bound <= limit
        )
        return small / total

    def as_dict(self) -> dict[str, int]:
        """Non-zero buckets in canonical bucket order (JSON-stable)."""
        return {
            label: self.counts[label]
            for label in SIZE_BUCKET_LABELS
            if self.counts.get(label, 0)
        }


@dataclass
class PhaseTimer:
    """Aggregate bytes moved over a measured phase; reports MB/s."""

    name: str = ""
    start: float = 0.0
    end: float = 0.0
    bytes_moved: float = 0.0

    def begin(self, now: float) -> None:
        self.start = now

    def finish(self, now: float) -> None:
        self.end = now

    def add_bytes(self, nbytes: float) -> None:
        self.bytes_moved += nbytes

    @property
    def elapsed(self) -> float:
        return max(self.end - self.start, 0.0)

    @property
    def bandwidth_mbps(self) -> float:
        """Achieved bandwidth in MB/s, as the paper's figures report."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_moved / MB / self.elapsed


@dataclass
class OpCounter:
    """Counts of operations by kind, e.g. MDS loads or lock acquisitions."""

    counts: dict[str, int] = field(default_factory=dict)

    def hit(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def total(self) -> int:
        return sum(self.counts.values())
