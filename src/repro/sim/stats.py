"""Measurement helpers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

MB = 1024.0 * 1024.0
GB = 1024.0 * MB


@dataclass
class PhaseTimer:
    """Aggregate bytes moved over a measured phase; reports MB/s."""

    name: str = ""
    start: float = 0.0
    end: float = 0.0
    bytes_moved: float = 0.0

    def begin(self, now: float) -> None:
        self.start = now

    def finish(self, now: float) -> None:
        self.end = now

    def add_bytes(self, nbytes: float) -> None:
        self.bytes_moved += nbytes

    @property
    def elapsed(self) -> float:
        return max(self.end - self.start, 0.0)

    @property
    def bandwidth_mbps(self) -> float:
        """Achieved bandwidth in MB/s, as the paper's figures report."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_moved / MB / self.elapsed


@dataclass
class OpCounter:
    """Counts of operations by kind, e.g. MDS loads or lock acquisitions."""

    counts: dict[str, int] = field(default_factory=dict)

    def hit(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def total(self) -> int:
        return sum(self.counts.values())
