"""``repro.model`` — analytic performance model and method auto-tuning.

Implements the paper's §V.A future work: predict PLFS performance without
benchmarking and flag the regimes where PLFS harms performance.
"""

from .autotune import Recommendation, choose_method, mds_safe_writer_limit, predict_all
from .perfmodel import Prediction, WorkloadPattern, predict_write

__all__ = [
    "WorkloadPattern",
    "Prediction",
    "predict_write",
    "predict_all",
    "choose_method",
    "Recommendation",
    "mds_safe_writer_limit",
]
