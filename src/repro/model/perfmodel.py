"""Analytic performance model of the simulated I/O stack.

The paper's future-work section (§V.A) proposes modelling PLFS performance
"to aid auto-optimisation of parameters, as well as assess the benefits of
PLFS on future I/O backplanes without requiring extensive benchmarking",
and in particular "to highlight systems where PLFS may have a negative
effect on performance".  This module provides that model: closed-form
bandwidth predictions built from the same mechanisms the discrete-event
simulator executes (lane serialisation, stream interleaving, write-back
caching, FUSE chunking, MDS create storms) — but evaluated in microseconds
instead of simulated, so parameter sweeps are essentially free.

The model is validated against the simulator by the ``model_validation``
benchmark (experiment M1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.machine import MachineSpec
from repro.fs.parallel import STRIPE_UNIT
from repro.fs.plfssim import CLOSE_OPS, DROPPING_CREATE_OPS
from repro.mpiio.methods import AccessMethod
from repro.sim.stats import MB


@dataclass(frozen=True)
class WorkloadPattern:
    """An abstract parallel-write workload.

    ``writers`` is the number of processes that issue file-system writes
    (aggregators under collective buffering, all ranks for independent
    I/O); ``openers`` is the number of ranks that open the file (they all
    produce metadata traffic through PLFS).
    """

    nodes: int
    writers: int
    openers: int
    total_bytes: float
    write_size: float  # per application write call, per rank
    collective: bool = True

    @property
    def writes_per_writer(self) -> float:
        per_writer = self.total_bytes / self.writers
        return max(1.0, per_writer / max(self.backend_write_size, 1.0))

    @property
    def backend_write_size(self) -> float:
        """Bytes per backend write call from one writer."""
        if self.collective:
            # aggregator collects its node's share of each write round
            ranks_per_writer = max(1, self.openers // max(self.writers, 1))
            return self.write_size * ranks_per_writer
        return self.write_size


@dataclass
class Prediction:
    """Predicted write performance for one (machine, method, pattern)."""

    bandwidth_mbps: float
    elapsed: float
    bottleneck: str
    components: dict = field(default_factory=dict)


def _stream_efficiency(machine: MachineSpec, streams: int) -> float:
    perf = machine.perf
    per_server = streams / machine.io_servers
    share = perf.server_bandwidth / perf.server_concurrency
    return share / (1.0 + perf.stream_interleave_factor * per_server)


def _mds_storm_seconds(
    machine: MachineSpec, creates: int, light_ops: int, depth_scale: int
) -> float:
    """Closed form of the simulator's create-storm service integral.

    *depth_scale* is the number of concurrent creators (each creator's
    creates are sequential, so the observed create depth peaks near the
    creator count, not the total create count).  The depth stays high for
    most of the storm — creators re-enter the queue with their next
    create as soon as one completes — so the mean thrash factor is taken
    as the peak factor over an empirical divisor of 2.5 (fitted against
    the simulator; validated by experiment M1).
    """
    perf = machine.perf
    n = max(creates, 0) / perf.mds_count
    m = max(light_ops, 0) / perf.mds_count
    depth = max(depth_scale, 1) / perf.mds_count
    base = perf.mds_base_service
    exp = perf.mds_contention_exp
    c = perf.mds_contention
    thrash = base * perf.mds_create_weight * n * ((c * depth) ** exp) / 2.5
    weighted = base * perf.mds_create_weight * n * (1 + perf.mds_linear * depth / 2)
    light = base * m * (1 + perf.mds_linear * depth / 2)
    return thrash + weighted + light


def predict_write(
    machine: MachineSpec,
    method: AccessMethod,
    pattern: WorkloadPattern,
) -> Prediction:
    """Predict achieved write bandwidth (MB/s) for the pattern."""
    perf = machine.perf
    components: dict = {}

    # ------------------------------------------------------------------ #
    # data-path service rate
    # ------------------------------------------------------------------ #
    backend_write = pattern.backend_write_size
    if method.uses_plfs:
        streams = pattern.writers
        eff = _stream_efficiency(machine, streams)
        if method.fuse_transport:
            chunk = perf.fuse_max_write
            n_chunks = math.ceil(backend_write / chunk)
            service = n_chunks * (perf.server_op_overhead + chunk / eff)
            client_side = n_chunks * perf.fuse_request_overhead
        else:
            service = perf.server_op_overhead + backend_write / eff
            client_side = 0.0
        per_server_rate = backend_write / service
        storage_rate = per_server_rate * min(machine.io_servers, streams)
        ops_per_bottleneck = math.ceil(streams / machine.io_servers)
    else:
        lanes = perf.shared_file_concurrency
        segment = min(backend_write, STRIPE_UNIT)
        eff = _stream_efficiency(machine, lanes)
        service = perf.seek_time + perf.server_op_overhead + segment / eff
        lane_rate = segment / service
        storage_rate = lane_rate * min(lanes, max(pattern.writers, 1))
        client_side = 0.0
        segments_per_write = math.ceil(backend_write / segment)
        ops_per_bottleneck = math.ceil(
            pattern.writers * segments_per_write / lanes
        )

    # per-node client daemons bound what the writers can push
    client_rate = pattern.nodes * perf.client_bandwidth
    if method.fuse_transport and client_side > 0:
        fuse_rate = pattern.writers * backend_write / (
            client_side + backend_write / perf.client_bandwidth * pattern.writers / pattern.nodes
        )
        client_rate = min(client_rate, fuse_rate)

    if pattern.collective:
        # Convoy effect: a collective round completes when the *slowest*
        # participant does, so the round time is the store-and-forward
        # transport plus a full service queue at the bottleneck resource
        # (server for PLFS streams, lane for a shared file).  Steady-state
        # throughput is the round payload over the round time.
        transport = backend_write / perf.client_bandwidth + client_side
        round_time = transport + ops_per_bottleneck * service
        round_bytes = pattern.writers * backend_write
        data_rate = min(round_bytes / round_time, client_rate)
    else:
        data_rate = min(storage_rate, client_rate)

    # ------------------------------------------------------------------ #
    # client write-back cache absorption (PLFS routes only)
    # ------------------------------------------------------------------ #
    cached_bytes = 0.0
    if (
        method.uses_plfs
        and not method.fuse_transport
        and pattern.write_size <= perf.cache_write_through
    ):
        cached_bytes = min(
            pattern.writers * perf.cache_dirty_per_proc, pattern.total_bytes
        )
    drained_bytes = pattern.total_bytes - cached_bytes
    data_seconds = drained_bytes / data_rate
    memcpy_seconds = cached_bytes / (perf.memcpy_bandwidth * pattern.writers)

    # ------------------------------------------------------------------ #
    # metadata storm (PLFS routes only)
    # ------------------------------------------------------------------ #
    if method.uses_plfs:
        creates = pattern.writers * DROPPING_CREATE_OPS
        light = pattern.openers * (1 + CLOSE_OPS) + pattern.nodes
        mds_seconds = _mds_storm_seconds(machine, creates, light, pattern.writers)
    else:
        mds_seconds = machine.perf.mds_base_service
        creates = 0

    # the create storm overlaps data writing: the longer phase dominates,
    # with a fraction of the shorter adding on
    elapsed = max(data_seconds, mds_seconds) + 0.25 * min(data_seconds, mds_seconds)
    elapsed += memcpy_seconds
    per_call = method.per_call_overhead * pattern.writes_per_writer
    elapsed += per_call

    components.update(
        data_seconds=data_seconds,
        mds_seconds=mds_seconds,
        memcpy_seconds=memcpy_seconds,
        cached_bytes=cached_bytes,
        storage_rate=storage_rate,
        client_rate=client_rate,
    )
    if mds_seconds > data_seconds:
        bottleneck = "metadata server"
    elif storage_rate <= client_rate:
        bottleneck = "storage servers" if method.uses_plfs else "shared-file lanes"
    else:
        bottleneck = "client daemons"
    if method.fuse_transport:
        bottleneck = f"{bottleneck} (+FUSE chunking)"

    return Prediction(
        bandwidth_mbps=pattern.total_bytes / MB / elapsed,
        elapsed=elapsed,
        bottleneck=bottleneck,
        components=components,
    )
