"""Method auto-selection from the analytic model.

The paper closes by hoping to "use our performance model to highlight
systems where PLFS may have a negative effect on performance, where
perhaps using just file partitioning or a log-based file system will
provide greater performance" (§V.A).  :func:`choose_method` does exactly
that: given a machine and a workload pattern it predicts every access
route and recommends one, flagging the regimes where PLFS hurts (the
Fig. 5 collapse) so an operator can fall back to plain MPI-IO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import MachineSpec
from repro.insights.metrics import IORunProfile
from repro.insights.rules import Finding, run_rules
from repro.mpiio.methods import ALL_METHODS, AccessMethod

from .perfmodel import Prediction, WorkloadPattern, predict_write


@dataclass
class Recommendation:
    """Outcome of an auto-tuning query."""

    method: AccessMethod
    predictions: dict[str, Prediction]
    plfs_helps: bool
    explanation: str
    #: insight findings from observed run data, when a profile was given —
    #: the detector evidence the explanation cites
    findings: list[Finding] = field(default_factory=list)
    #: ahead-of-run lint findings (``repro.lint``), when supplied — the
    #: static counterpart of the observed evidence
    static_findings: list = field(default_factory=list)

    @property
    def speedup_vs_mpiio(self) -> float:
        best = self.predictions[self.method.name].bandwidth_mbps
        base = self.predictions["MPI-IO"].bandwidth_mbps
        return best / base if base > 0 else float("inf")


def predict_all(
    machine: MachineSpec,
    pattern: WorkloadPattern,
    methods: list[AccessMethod] | None = None,
) -> dict[str, Prediction]:
    """Model predictions for every access route."""
    return {
        m.name: predict_write(machine, m, pattern)
        for m in (methods or ALL_METHODS)
    }


def choose_method(
    machine: MachineSpec,
    pattern: WorkloadPattern,
    methods: list[AccessMethod] | None = None,
    *,
    profile: IORunProfile | None = None,
    static_findings: list | None = None,
) -> Recommendation:
    """Recommend the fastest access route for the pattern.

    Pass an :class:`~repro.insights.metrics.IORunProfile` built from an
    observed run and the recommendation will also run the insights rule
    engine on it, citing the detector evidence in its explanation — the
    model says *what* to pick, the detectors say *why* the observed
    behaviour supports it.  Pass *static_findings* (from
    :func:`repro.lint.lint_path` over the workload's script) and the
    ahead-of-run evidence is cited the same way: the paper's §V.A
    advisory, answered before the job is even submitted.
    """
    predictions = predict_all(machine, pattern, methods)
    best_name = max(predictions, key=lambda name: predictions[name].bandwidth_mbps)
    best = next(m for m in (methods or ALL_METHODS) if m.name == best_name)
    mpiio_bw = predictions["MPI-IO"].bandwidth_mbps if "MPI-IO" in predictions else 0.0
    best_bw = predictions[best_name].bandwidth_mbps
    plfs_helps = best.uses_plfs and best_bw > mpiio_bw

    if plfs_helps:
        explanation = (
            f"{best_name} predicted {best_bw:.0f} MB/s vs {mpiio_bw:.0f} MB/s "
            f"for plain MPI-IO ({best_bw / max(mpiio_bw, 1e-9):.1f}x); "
            f"bottleneck: {predictions[best_name].bottleneck}."
        )
    else:
        # The regime the paper warns about: PLFS at scale on a
        # dedicated-MDS file system.
        worst_plfs = min(
            (p for name, p in predictions.items() if name != "MPI-IO"),
            key=lambda p: p.bandwidth_mbps,
            default=None,
        )
        explanation = (
            f"PLFS predicted to hurt here (best PLFS route "
            f"{max((p.bandwidth_mbps for n, p in predictions.items() if n != 'MPI-IO'), default=0):.0f} MB/s "
            f"vs MPI-IO {mpiio_bw:.0f} MB/s)"
        )
        if worst_plfs is not None and "metadata" in worst_plfs.bottleneck:
            explanation += (
                "; the metadata server is the predicted bottleneck — the "
                "dropping-create storm exceeds what a dedicated MDS absorbs"
            )
        explanation += "."

    findings: list[Finding] = []
    if profile is not None:
        findings = run_rules(profile)
        if findings:
            top = findings[0]
            cited = ", ".join(
                f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(top.evidence.items())
            )
            explanation += (
                f"  Observed evidence [{top.severity.name}] {top.rule}: "
                f"{top.title} ({cited})."
            )

    static_findings = list(static_findings or [])
    if static_findings:
        top_static = max(
            static_findings,
            key=lambda f: (int(f.severity), f.rule),
        )
        explanation += (
            f"  Static evidence [{top_static.severity.name}] "
            f"{top_static.rule} {top_static.name} at "
            f"{top_static.location()}: {top_static.detail}."
        )

    return Recommendation(
        method=best,
        predictions=predictions,
        plfs_helps=plfs_helps,
        explanation=explanation,
        findings=findings,
        static_findings=static_findings,
    )


def advise_from_profile(
    machine: MachineSpec,
    profile: IORunProfile,
    methods: list[AccessMethod] | None = None,
    *,
    static_findings: list | None = None,
) -> Recommendation:
    """Model recommendation driven by an *observed* run profile.

    Reconstructs the abstract workload pattern from the profile's
    characterisation (writers, openers, volume, write size, collective
    or not) and answers the paper's §V.A question — "does PLFS help
    here?" — with both the analytic predictions and the rule engine's
    graded evidence attached.
    """
    pattern = WorkloadPattern(
        nodes=max(profile.nodes, 1),
        writers=max(profile.writers, 1),
        openers=max(profile.openers, profile.writers, 1),
        total_bytes=max(profile.total_bytes_written, 1.0),
        write_size=max(profile.typical_write_size, 1.0),
        collective=profile.collective,
    )
    return choose_method(
        machine,
        pattern,
        methods,
        profile=profile,
        static_findings=static_findings,
    )


def mds_safe_writer_limit(
    machine: MachineSpec,
    pattern: WorkloadPattern,
    methods: list[AccessMethod] | None = None,
) -> int | None:
    """Largest writer count (doubling search) at which PLFS still beats
    plain MPI-IO for this pattern shape — None if it never does.

    This is the "highlight systems where PLFS may have a negative effect"
    query: run once per machine and workload family, and you know where
    to stop scaling PLFS.
    """
    from dataclasses import replace

    best_ok: int | None = None
    writers = max(1, pattern.writers)
    for _ in range(24):
        scaled = replace(
            pattern,
            writers=writers,
            openers=max(pattern.openers, writers),
            nodes=max(pattern.nodes, writers // 12 + 1),
            total_bytes=pattern.total_bytes / pattern.writers * writers,
        )
        rec = choose_method(machine, scaled, methods)
        if rec.plfs_helps:
            best_ok = writers
        elif best_ok is not None:
            break
        writers *= 2
    return best_ok
